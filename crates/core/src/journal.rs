//! Durable run journal: crash-safe resume for matrix runs.
//!
//! A [`RunJournal`] is an append-only JSONL file (hand-rolled, like
//! `BENCH_hotpath.json` — no serde in the tree) recording the exact
//! [`SimStats`] of every completed matrix cell, keyed by a *config
//! fingerprint*. A run handed a journal skips already-journaled cells by
//! copying their stats back bit-identically and re-runs only missing or
//! previously-failed cells, so a killed process loses at most the cells
//! that were in flight.
//!
//! # Fingerprints
//!
//! The fingerprint is an FNV-1a 64-bit hash over a canonical string of
//! everything that determines a cell's stats: the crate version, a hash
//! of the full pipeline configuration, the workload name, a hash of its
//! *source text* (which also covers the scale — test and full inputs are
//! different sources), its arguments, the experiment title, the model,
//! and the machine/simulation parameters (issue width, branch slots,
//! memory model, cycle budget). Any change to any of these produces a
//! different fingerprint, so stale entries are ignored — never silently
//! reused. The cost of a false mismatch is only a recompute; the cost of
//! a false match would be wrong numbers, so the key is deliberately
//! conservative.
//!
//! # File format
//!
//! One JSON object per line. The first line is a `meta` record; every
//! completed cell appends a `cell` record:
//!
//! ```text
//! {"kind":"meta","version":2,"crate_version":"0.1.0"}
//! {"kind":"cell","version":2,"fp":"92ab...","workload":"wc","experiment":"Figure 8: ...","model":"fullpred","cycles":123,...,"ret":42,"ck":"a1b2c3d4e5f60718"}
//! ```
//!
//! Every version-2 cell line ends with a `ck` suffix: the [`fnv64`] hash
//! (hex, 16 digits) of every byte of the line before the `,"ck"` marker.
//! A record whose checksum does not verify is *corruption*, counted and
//! never served — a flipped bit can no longer masquerade as truth.
//! Version-1 lines (written before checksums existed) carry no `ck` and
//! are still accepted, so old journals and stores load unchanged.
//!
//! Only successful cells are journaled — failures re-run on resume.
//! Loading tolerates a torn trailing line (a crash mid-append) and skips
//! records whose per-line `version` is neither [`JOURNAL_VERSION`] nor
//! [`LEGACY_JOURNAL_VERSION`]; both simply fall back to re-running the
//! cell.

use hyperpred_sim::SimStats;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use crate::pipeline::Model;

pub use crate::store::{CompactStats, Store};

/// Schema version stamped into every record so future shape changes are
/// detected (and skipped) instead of silently mis-parsed. Version 2
/// added the per-line `ck` checksum suffix.
pub const JOURNAL_VERSION: u64 = 2;

/// The pre-checksum schema version. Lines at this version carry no `ck`
/// suffix and are accepted as-is so stores written before the checksum
/// change still load.
pub const LEGACY_JOURNAL_VERSION: u64 = 1;

/// FNV-1a 64-bit hash — small, dependency-free, and stable across runs
/// and platforms (unlike `DefaultHasher`, which is randomly seeded).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One completed cell, ready to append.
#[derive(Debug, Clone)]
pub struct JournalEntry<'a> {
    /// Config fingerprint the stats are keyed by.
    pub fingerprint: &'a str,
    /// Workload name (human context; the fingerprint is the key).
    pub workload: &'a str,
    /// Figure title, or `"baseline"` for the shared denominator cell.
    pub experiment: &'a str,
    /// Model simulated (`None` for the baseline cell).
    pub model: Option<Model>,
    /// The cell's exact simulation statistics.
    pub stats: &'a SimStats,
}

/// What happened to one [`RunJournal::record`]/[`Store::put`] call.
///
/// The fingerprint is a content address: two entries sharing one must
/// carry identical stats. A mismatch is *never* resolved by overwriting —
/// it is surfaced as a counted conflict and the key stops being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// The fingerprint was new; the entry was indexed and appended.
    Appended,
    /// An identical entry was already indexed; nothing was written.
    Duplicate,
    /// The fingerprint was already indexed with *different* stats. The
    /// key is now conflicted: it will no longer be served by lookups,
    /// and the conflicting entry was appended so a reload re-detects the
    /// conflict from the file alone.
    Conflict,
}

/// One detected fingerprint conflict: the same content address observed
/// with two different stat payloads. Either the fingerprint scheme missed
/// an input that matters (a false match — the dangerous case the journal
/// docs call out) or a writer is damaged; both mean neither payload can
/// be trusted, so the key is refused, not arbitrated.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalConflict {
    /// The doubly-claimed fingerprint.
    pub fingerprint: String,
    /// The stats indexed first.
    pub kept: SimStats,
    /// The first differing stats observed for the same fingerprint.
    pub rejected: SimStats,
}

/// The fingerprint → stats index shared by [`RunJournal`] and [`Store`]:
/// first-write-wins with conflict quarantine instead of the historical
/// silent last-write-wins.
#[derive(Debug, Default)]
pub(crate) struct CellIndex {
    cells: HashMap<String, SimStats>,
    conflicted: HashMap<String, JournalConflict>,
}

impl CellIndex {
    /// Indexes one entry, classifying it against what is already held.
    pub(crate) fn insert(&mut self, fp: &str, stats: SimStats) -> RecordOutcome {
        if self.conflicted.contains_key(fp) {
            return RecordOutcome::Conflict;
        }
        match self.cells.get(fp) {
            None => {
                self.cells.insert(fp.to_string(), stats);
                RecordOutcome::Appended
            }
            Some(existing) if *existing == stats => RecordOutcome::Duplicate,
            Some(_) => {
                let kept = self
                    .cells
                    .remove(fp)
                    .expect("just matched Some; no other borrow can remove it");
                self.conflicted.insert(
                    fp.to_string(),
                    JournalConflict {
                        fingerprint: fp.to_string(),
                        kept,
                        rejected: stats,
                    },
                );
                RecordOutcome::Conflict
            }
        }
    }

    pub(crate) fn lookup(&self, fp: &str) -> Option<SimStats> {
        self.cells.get(fp).cloned()
    }

    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    pub(crate) fn conflicts(&self) -> usize {
        self.conflicted.len()
    }

    pub(crate) fn is_conflicted(&self, fp: &str) -> bool {
        self.conflicted.contains_key(fp)
    }

    pub(crate) fn conflict_report(&self) -> Vec<JournalConflict> {
        let mut v: Vec<JournalConflict> = self.conflicted.values().cloned().collect();
        v.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        v
    }
}

/// The durable journal: an in-memory fingerprint → stats map backed by an
/// append-only JSONL file. Appends are a single `write` + flush under a
/// mutex, so concurrent workers interleave whole lines, never bytes.
pub struct RunJournal {
    path: PathBuf,
    cells: Mutex<CellIndex>,
    file: Mutex<File>,
    /// Corrupt records skipped while loading (see [`RunJournal::corrupt`]).
    corrupt: usize,
}

impl std::fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJournal")
            .field("path", &self.path)
            .field("cells", &self.len())
            .finish()
    }
}

impl RunJournal {
    /// Opens (creating if absent) the journal at `path` and loads every
    /// valid `cell` record. A torn trailing line or a record with a
    /// mismatched schema version is skipped, not an error.
    ///
    /// # Errors
    /// Fails only on I/O errors (unreadable file, uncreatable path).
    pub fn open(path: impl AsRef<Path>) -> io::Result<RunJournal> {
        let path = path.as_ref().to_path_buf();
        // Lossy read: a disk-corrupted byte becomes U+FFFD and fails that
        // line's checksum; it must not make the whole journal unreadable.
        let existing = match std::fs::read(&path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut cells = CellIndex::default();
        let mut corrupt = 0usize;
        let lines: Vec<&str> = existing.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Some((fp, stats)) = parse_cell_line(line) {
                cells.insert(&fp, stats);
                continue;
            }
            // Expected skips: meta records, a torn *final* line (crash
            // mid-append), and foreign-version cells (schema change).
            // Anything else — including a checksum-failing line — is
            // corruption: skipped, but counted, so drivers can report a
            // damaged journal instead of silently re-running an
            // unexpected number of cells.
            if !is_expected_skip(line, idx + 1 == lines.len()) {
                corrupt += 1;
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if existing.is_empty() {
            let meta = format!(
                "{{\"kind\":\"meta\",\"version\":{JOURNAL_VERSION},\"crate_version\":\"{}\"}}\n",
                env!("CARGO_PKG_VERSION")
            );
            file.write_all(meta.as_bytes())?;
            file.flush()?;
        }
        Ok(RunJournal {
            path,
            cells: Mutex::new(cells),
            file: Mutex::new(file),
            corrupt,
        })
    }

    /// The file backing this journal.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of corrupt (unparseable, non-torn-tail) records skipped
    /// while loading. A nonzero count means the file was damaged — every
    /// intact record is still used; the damaged cells simply re-run.
    pub fn corrupt(&self) -> usize {
        self.corrupt
    }

    /// Number of journaled cells served by lookups (conflicted keys are
    /// quarantined and excluded).
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no cells are journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of conflicted fingerprints: keys observed with two
    /// different stat payloads (see [`JournalConflict`]). Like
    /// [`RunJournal::corrupt`], nonzero means the file cannot be fully
    /// trusted — the conflicted cells simply re-run.
    pub fn conflicts(&self) -> usize {
        self.cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .conflicts()
    }

    /// Every detected conflict, sorted by fingerprint.
    pub fn conflict_report(&self) -> Vec<JournalConflict> {
        self.cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .conflict_report()
    }

    /// The journaled stats for `fingerprint`, if any. A conflicted
    /// fingerprint is never served: the journal cannot know which of the
    /// competing payloads is right, and a wrong bit-identical "resume"
    /// is strictly worse than a recompute.
    pub fn lookup(&self, fingerprint: &str) -> Option<SimStats> {
        self.cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(fingerprint)
    }

    /// Appends one completed cell: a single line written and flushed
    /// atomically with respect to other appends, then mirrored into the
    /// in-memory map.
    ///
    /// An entry identical to one already journaled is a no-op
    /// ([`RecordOutcome::Duplicate`]). An entry whose fingerprint is
    /// already journaled with *different* stats quarantines the key
    /// ([`RecordOutcome::Conflict`]): the conflicting line is still
    /// appended — so a plain reload of the file re-detects the conflict —
    /// but lookups stop serving the key and [`RunJournal::conflicts`]
    /// counts it. The historical behavior was a silent last-write-wins.
    ///
    /// # Errors
    /// Fails on I/O errors; the in-memory map is updated regardless, so a
    /// full disk degrades durability, not correctness, of the current run.
    pub fn record(&self, entry: &JournalEntry<'_>) -> io::Result<RecordOutcome> {
        let line = cell_line(entry);
        let outcome = self
            .cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(entry.fingerprint, entry.stats.clone());
        if outcome == RecordOutcome::Duplicate {
            return Ok(outcome);
        }
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        file.write_all(line.as_bytes())?;
        file.flush()?;
        Ok(outcome)
    }
}

/// The journal slug for a model slot (`"baseline"` when `None`).
pub fn model_slug(model: Option<Model>) -> &'static str {
    match model {
        None => "baseline",
        Some(Model::Superblock) => "superblock",
        Some(Model::CondMove) => "condmove",
        Some(Model::FullPred) => "fullpred",
    }
}

/// Serializes one cell record as a JSONL line (trailing newline
/// included), ending in the `ck` checksum suffix: `fnv64` over every
/// byte before the `,"ck"` marker.
pub(crate) fn cell_line(entry: &JournalEntry<'_>) -> String {
    let s = entry.stats;
    let mut line = format!(
        "{{\"kind\":\"cell\",\"version\":{JOURNAL_VERSION},\"fp\":\"{}\",\
         \"workload\":\"{}\",\"experiment\":\"{}\",\"model\":\"{}\",\
         \"cycles\":{},\"insts\":{},\"nullified\":{},\"branches\":{},\
         \"mispredicts\":{},\"loads\":{},\"stores\":{},\
         \"icache_misses\":{},\"dcache_misses\":{},\"ret\":{}",
        escape(entry.fingerprint),
        escape(entry.workload),
        escape(entry.experiment),
        model_slug(entry.model),
        s.cycles,
        s.insts,
        s.nullified,
        s.branches,
        s.mispredicts,
        s.loads,
        s.stores,
        s.icache_misses,
        s.dcache_misses,
        s.ret,
    );
    let ck = fnv64(line.as_bytes());
    line.push_str(&format!(",\"ck\":\"{ck:016x}\"}}\n"));
    line
}

/// The `,"ck":"` marker that opens the checksum suffix. Safe to locate
/// with `rfind`: [`escape`] turns every `"` inside a value into `\"`,
/// so this exact byte sequence cannot occur inside field data.
const CK_MARKER: &str = ",\"ck\":\"";

/// Verifies the checksum suffix of a current-version line. `None` when
/// the suffix is missing, malformed, or does not match the bytes.
fn verify_checksum(trimmed: &str) -> Option<()> {
    let at = trimmed.rfind(CK_MARKER)?;
    let hex = trimmed[at + CK_MARKER.len()..].strip_suffix("\"}")?;
    let ck = u64::from_str_radix(hex, 16).ok()?;
    if ck == fnv64(&trimmed.as_bytes()[..at]) {
        Some(())
    } else {
        None
    }
}

/// Parses one line; `None` for meta records, foreign versions, torn,
/// checksum-failing, or malformed lines (all of which just mean "re-run
/// that cell" — the caller classifies which are *expected*).
pub(crate) fn parse_cell_line(line: &str) -> Option<(String, SimStats)> {
    let trimmed = line.trim_end();
    if !trimmed.ends_with('}') {
        return None; // torn trailing line from a crash mid-append
    }
    if field_str(line, "kind")? != "cell" {
        return None;
    }
    match field_u64(line, "version")? {
        // Pre-checksum records are trusted as-is (nothing better exists).
        LEGACY_JOURNAL_VERSION => {}
        // A current-version record must checksum: a line claiming v2
        // with a missing or wrong `ck` is damage, not a foreign schema.
        JOURNAL_VERSION => verify_checksum(trimmed)?,
        _ => return None,
    }
    let fp = field_str(line, "fp")?;
    let stats = SimStats {
        cycles: field_u64(line, "cycles")?,
        insts: field_u64(line, "insts")?,
        nullified: field_u64(line, "nullified")?,
        branches: field_u64(line, "branches")?,
        mispredicts: field_u64(line, "mispredicts")?,
        loads: field_u64(line, "loads")?,
        stores: field_u64(line, "stores")?,
        icache_misses: field_u64(line, "icache_misses")?,
        dcache_misses: field_u64(line, "dcache_misses")?,
        ret: field_i64(line, "ret")?,
    };
    Some((fp, stats))
}

/// Classifies a line [`parse_cell_line`] rejected: `true` when the skip
/// is *expected* (meta record, foreign-but-recognized schema version, or
/// a torn final line from a crash mid-append), `false` when it is
/// corruption the caller should count. Shared by [`RunJournal::open`],
/// the store's segment scanner, and `fsck` so all three agree on what
/// "damaged" means.
pub(crate) fn is_expected_skip(line: &str, is_last_line: bool) -> bool {
    let kind = field_str(line, "kind");
    let is_meta = kind.as_deref() == Some("meta");
    let is_foreign_cell = kind.as_deref() == Some("cell")
        && field_u64(line, "version")
            .is_some_and(|v| v != JOURNAL_VERSION && v != LEGACY_JOURNAL_VERSION);
    let is_torn_tail = is_last_line && !line.trim_end().ends_with('}');
    is_meta || is_foreign_cell || is_torn_tail
}

/// Escapes a string for our JSON writer (backslash, quote, newline).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Extracts `"key":"value"` (escape-aware) from a hand-rolled JSON line.
pub(crate) fn field_str(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(unescape(&rest[..end?]))
}

/// Extracts an unsigned integer field from a hand-rolled JSON line.
pub(crate) fn field_u64(json: &str, key: &str) -> Option<u64> {
    field_number(json, key)?.parse().ok()
}

/// Extracts a signed integer field from a hand-rolled JSON line.
pub(crate) fn field_i64(json: &str, key: &str) -> Option<i64> {
    field_number(json, key)?.parse().ok()
}

fn field_number<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(seed: u64) -> SimStats {
        SimStats {
            cycles: seed,
            insts: seed + 1,
            nullified: seed + 2,
            branches: seed + 3,
            mispredicts: seed + 4,
            loads: seed + 5,
            stores: seed + 6,
            icache_misses: seed + 7,
            dcache_misses: seed + 8,
            ret: -(seed as i64),
        }
    }

    #[test]
    fn fnv64_is_stable() {
        // Pinned reference values: the fingerprint scheme depends on this
        // hash never changing across versions or platforms.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn cell_lines_round_trip_exactly() {
        let s = stats(1000);
        let entry = JournalEntry {
            fingerprint: "deadbeef00112233",
            workload: "wc",
            experiment: "Figure 8: 8-issue, 1-branch, perfect caches",
            model: Some(Model::FullPred),
            stats: &s,
        };
        let line = cell_line(&entry);
        let (fp, parsed) = parse_cell_line(line.trim_end()).expect("parses");
        assert_eq!(fp, "deadbeef00112233");
        assert_eq!(parsed, s, "stats must round-trip bit-identically");
    }

    #[test]
    fn escaping_round_trips() {
        let ugly = "quote \" backslash \\ newline \n done";
        assert_eq!(unescape(&escape(ugly)), ugly);
        let line = format!("{{\"kind\":\"x\",\"name\":\"{}\"}}", escape(ugly));
        assert_eq!(field_str(&line, "name").as_deref(), Some(ugly));
    }

    #[test]
    fn torn_and_foreign_lines_are_skipped() {
        // Torn line: a crash mid-append leaves no closing brace.
        assert!(
            parse_cell_line("{\"kind\":\"cell\",\"version\":1,\"fp\":\"ab\",\"cycles\":4")
                .is_none()
        );
        // Meta record and foreign schema versions are not cells.
        assert!(parse_cell_line("{\"kind\":\"meta\",\"version\":1}").is_none());
        let s = stats(5);
        let line = cell_line(&JournalEntry {
            fingerprint: "ff",
            workload: "w",
            experiment: "baseline",
            model: None,
            stats: &s,
        });
        let foreign = line.replace(&format!("\"version\":{JOURNAL_VERSION}"), "\"version\":99");
        assert!(parse_cell_line(foreign.trim_end()).is_none());
        assert!(parse_cell_line(line.trim_end()).is_some());
    }

    /// Rewrites a current-version line as its version-1 (pre-checksum)
    /// equivalent: `ck` suffix stripped, version field downgraded.
    fn legacy_line(line: &str) -> String {
        let trimmed = line.trim_end();
        let at = trimmed.rfind(",\"ck\":\"").expect("v2 line has a ck");
        format!("{}}}\n", &trimmed[..at]).replace(
            &format!("\"version\":{JOURNAL_VERSION}"),
            &format!("\"version\":{LEGACY_JOURNAL_VERSION}"),
        )
    }

    #[test]
    fn checksum_catches_a_flipped_bit() {
        let s = stats(7);
        let line = cell_line(&JournalEntry {
            fingerprint: "aa",
            workload: "w",
            experiment: "baseline",
            model: Some(Model::FullPred),
            stats: &s,
        });
        assert!(parse_cell_line(line.trim_end()).is_some());
        // Flip one digit of the cycles field: still perfectly
        // well-formed JSON, but the checksum no longer verifies.
        let flipped = line.replace("\"cycles\":7", "\"cycles\":8");
        assert_ne!(flipped, line);
        assert!(
            parse_cell_line(flipped.trim_end()).is_none(),
            "a silent payload flip must not be served"
        );
        // And a flipped line mid-file is counted as corruption.
        let content = format!("{line}{flipped}");
        let j = open_with("bitflip", content.as_bytes());
        assert_eq!(j.len(), 1);
        assert_eq!(j.lookup("aa"), Some(s));
        assert_eq!(j.corrupt(), 1);
    }

    #[test]
    fn legacy_v1_lines_without_checksum_still_load() {
        let s = stats(11);
        let line = cell_line(&JournalEntry {
            fingerprint: "old",
            workload: "w",
            experiment: "baseline",
            model: None,
            stats: &s,
        });
        let v1 = legacy_line(&line);
        assert!(!v1.contains("\"ck\""));
        let (fp, parsed) = parse_cell_line(v1.trim_end()).expect("legacy line parses");
        assert_eq!(fp, "old");
        assert_eq!(parsed, s);
        // A v2 line with the checksum chopped off is damage, not legacy.
        let chopped = format!(
            "{}}}\n",
            line.trim_end()
                .split(",\"ck\":\"")
                .next()
                .expect("has a ck suffix")
        );
        assert!(parse_cell_line(chopped.trim_end()).is_none());
        let j = open_with("legacy", format!("{v1}{chopped}").as_bytes());
        assert_eq!(j.len(), 1, "v1 loads; chopped v2 does not");
        assert_eq!(j.corrupt(), 1, "the chopped v2 line is corruption");
    }

    #[test]
    fn journal_persists_and_reloads() {
        let dir = std::env::temp_dir().join("hyperpred-journal-unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");

        let s1 = stats(10);
        let s2 = stats(20);
        {
            let j = RunJournal::open(&path).unwrap();
            assert!(j.is_empty());
            j.record(&JournalEntry {
                fingerprint: "aa",
                workload: "w1",
                experiment: "baseline",
                model: None,
                stats: &s1,
            })
            .unwrap();
            j.record(&JournalEntry {
                fingerprint: "bb",
                workload: "w2",
                experiment: "Figure 8",
                model: Some(Model::CondMove),
                stats: &s2,
            })
            .unwrap();
            assert_eq!(j.lookup("aa"), Some(s1.clone()));
        }
        // Simulate a crash mid-append: a torn half-line at the tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"kind\":\"cell\",\"version\":1,\"fp\":\"cc\",\"cyc").unwrap();
        }
        let j = RunJournal::open(&path).unwrap();
        assert_eq!(j.len(), 2, "torn tail must be dropped, not fatal");
        assert_eq!(j.corrupt(), 0, "a torn tail is expected, not corruption");
        assert_eq!(j.lookup("aa"), Some(s1));
        assert_eq!(j.lookup("bb"), Some(s2));
        assert_eq!(j.lookup("cc"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Writes `lines` to a fresh journal file and opens it.
    fn open_with(name: &str, content: &[u8]) -> RunJournal {
        let dir = std::env::temp_dir().join(format!("hyperpred-journal-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        std::fs::write(&path, content).unwrap();
        RunJournal::open(&path).unwrap()
    }

    #[test]
    fn mid_file_garbage_is_skipped_and_counted() {
        let s = stats(3);
        let good = cell_line(&JournalEntry {
            fingerprint: "aa",
            workload: "w",
            experiment: "baseline",
            model: None,
            stats: &s,
        });
        let good2 = cell_line(&JournalEntry {
            fingerprint: "bb",
            workload: "w",
            experiment: "baseline",
            model: None,
            stats: &s,
        });
        let content = format!(
            "{{\"kind\":\"meta\",\"version\":1,\"crate_version\":\"0.0.0\"}}\n\
             {good}\
             not json at all\n\
             {{\"kind\":\"cell\",\"version\":1,\"fp\":\"tr\",\"cycles\":9\n\
             {{\"kind\":\"cell\",\"version\":99,\"fp\":\"zz\",\"cycles\":1}}\n\
             {good2}"
        );
        let j = open_with("garbage", content.as_bytes());
        assert_eq!(j.len(), 2, "both intact cells survive");
        assert_eq!(j.lookup("aa"), Some(s.clone()));
        assert!(j.lookup("bb").is_some());
        // "not json at all" and the *mid-file* truncated cell are corrupt;
        // the meta record and the foreign-version cell are expected skips.
        assert_eq!(j.corrupt(), 2);
    }

    #[test]
    fn fuzzed_corruption_never_errors_and_keeps_intact_records() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut r = StdRng::seed_from_u64(0x10ad_f00d);
        for case in 0..64u32 {
            // Build a valid journal of a few cells...
            let n = r.gen_range(1..6usize);
            let mut lines: Vec<String> = vec![format!(
                "{{\"kind\":\"meta\",\"version\":{JOURNAL_VERSION},\"crate_version\":\"x\"}}\n"
            )];
            let mut fps = Vec::new();
            for i in 0..n {
                let s = stats(r.gen_range(0..1000));
                let fp = format!("fp{case}-{i}");
                lines.push(cell_line(&JournalEntry {
                    fingerprint: &fp,
                    workload: "w",
                    experiment: "baseline",
                    model: Some(Model::Superblock),
                    stats: &s,
                }));
                fps.push(fp);
            }
            // ...then smash it: mutate, truncate, or inject garbage lines.
            let mut damaged: Vec<String> = Vec::new();
            let mut intact: Vec<usize> = Vec::new();
            for (idx, line) in lines.iter().enumerate() {
                match r.gen_range(0..4u32) {
                    // Keep the line intact.
                    0 | 1 => {
                        if idx > 0 {
                            intact.push(idx - 1);
                        }
                        damaged.push(line.clone());
                    }
                    // Truncate it mid-record.
                    2 => {
                        let cut = r.gen_range(1..line.len());
                        let mut cut_at = cut;
                        while !line.is_char_boundary(cut_at) {
                            cut_at -= 1;
                        }
                        damaged.push(format!("{}\n", &line[..cut_at].trim_end()));
                    }
                    // Replace it with random bytes (printable, so the
                    // line structure survives; binary junk is covered by
                    // the truncation arm losing the closing brace).
                    _ => {
                        let len = r.gen_range(1..40usize);
                        let junk: String =
                            (0..len).map(|_| r.gen_range(b'#'..b'z') as char).collect();
                        damaged.push(format!("{junk}\n"));
                    }
                }
            }
            let content = damaged.concat();
            // Opening must never error, and every intact cell must load.
            let j = open_with(&format!("fuzz-{case}"), content.as_bytes());
            for &i in &intact {
                if i < fps.len() {
                    assert!(
                        j.lookup(&fps[i]).is_some(),
                        "case {case}: intact cell {} must survive corruption",
                        fps[i]
                    );
                }
            }
            assert!(j.len() <= n, "case {case}: no phantom cells");
        }
    }
}
