//! Dynamic oracle for the predicate relation analysis.
//!
//! The relation analysis ([`RelAnalysis`]) makes *universal* claims:
//! "whenever control reaches this point, `p` and `q` are never both
//! true". Those claims are exactly checkable at runtime — every concrete
//! execution is a witness. This module builds, from a *final* compiled
//! module, the relation state in force immediately after every
//! predicate-writing instruction, and provides a [`TraceSink`] that
//! audits each such point against the emulator's actual predicate file
//! (delivered through [`TraceSink::pred_write`]).
//!
//! The claims are rebuilt on the module the emulator runs — not reused
//! from the pipeline's `relations` checkpoint — so the oracle also
//! covers every transformation downstream of that checkpoint: if the
//! scheduler or a late pass reorders a predicate define in a way the
//! transfer function mis-models, the claim goes wrong *here*, on a
//! concrete run, with the offending program point named.

use hyperpred_emu::TraceSink;
use hyperpred_ir::analysis::relations::TOP;
use hyperpred_ir::analysis::{ForwardAnalysis, RelAnalysis};
use hyperpred_ir::{Cfg, FuncId, Module, Op, PredReg, RelState, RelationDb};
use std::collections::HashMap;

/// Static relation claims for every predicate-writing point of a module:
/// `(block, index)` → the [`RelState`] in force *after* that instruction
/// executes, per function.
pub struct PredClaims {
    per_func: Vec<HashMap<(u32, u32), RelState>>,
}

impl PredClaims {
    /// Replays the relation transfer function over every reachable block
    /// of every function, snapshotting the state after each predicate
    /// define, `pred_clear`, and `pred_set` — the exact set of points the
    /// emulators report through [`TraceSink::pred_write`].
    pub fn build(module: &Module) -> PredClaims {
        let per_func = module
            .funcs
            .iter()
            .map(|f| {
                let mut points = HashMap::new();
                if f.pred_count == 0 {
                    return points;
                }
                let cfg = Cfg::new(f);
                let db = RelationDb::build(f, &cfg);
                for (b, entry) in db.entry.iter().enumerate() {
                    let Some(entry) = entry else { continue };
                    let mut st = entry.clone();
                    for (i, inst) in f.blocks[b].insts.iter().enumerate() {
                        RelAnalysis.transfer(inst, &mut st);
                        if writes_preds(inst.op) {
                            points.insert((b as u32, i as u32), st.clone());
                        }
                        if inst.ends_block() {
                            break;
                        }
                    }
                }
                points
            })
            .collect();
        PredClaims { per_func }
    }

    /// True when no function has any predicate-writing point (nothing
    /// for the oracle to audit — e.g. an unpredicated model).
    pub fn is_empty(&self) -> bool {
        self.per_func.iter().all(HashMap::is_empty)
    }
}

fn writes_preds(op: Op) -> bool {
    op.is_pred_def() || matches!(op, Op::PredClear | Op::PredSet)
}

/// A [`TraceSink`] that checks every observed predicate-file write
/// against the static claims. The first violation is retained with the
/// program point and the refuted fact; `checked` counts audited writes
/// so callers can assert the oracle actually engaged.
pub struct PredOracleSink<'a> {
    claims: &'a PredClaims,
    /// Dynamic predicate writes audited so far.
    pub checked: u64,
    /// First refuted claim, as "B{block}[{index}]: {fact}".
    pub violation: Option<String>,
}

impl<'a> PredOracleSink<'a> {
    /// A fresh auditor over `claims`.
    pub fn new(claims: &'a PredClaims) -> PredOracleSink<'a> {
        PredOracleSink {
            claims,
            checked: 0,
            violation: None,
        }
    }
}

impl TraceSink for PredOracleSink<'_> {
    fn pred_write(
        &mut self,
        func: FuncId,
        block: hyperpred_ir::BlockId,
        index: usize,
        preds: &[bool],
    ) {
        if self.violation.is_some() {
            return;
        }
        let fact = self
            .claims
            .per_func
            .get(func.index())
            .and_then(|points| points.get(&(block.0, index as u32)));
        let Some(st) = fact else {
            self.violation = Some(format!(
                "B{}[{index}]: predicate write with no static claim \
                 (analysis thought this point unreachable)",
                block.0
            ));
            return;
        };
        self.checked += 1;
        if let Some(v) = refute(st, preds) {
            self.violation = Some(format!("B{}[{index}]: {v}", block.0));
        }
    }

    fn audits_preds(&self) -> bool {
        true
    }
}

/// Checks one claimed state against one observed predicate file,
/// returning the first refuted fact.
fn refute(st: &RelState, preds: &[bool]) -> Option<String> {
    let np = st.pred_count().min(preds.len());
    for i in 0..np {
        let p = PredReg(i as u32);
        if st.known_true(p) && !preds[i] {
            return Some(format!("claimed p{i} = 1 but observed false"));
        }
        if st.known_false(p) && preds[i] {
            return Some(format!("claimed p{i} = 0 but observed true"));
        }
        if !preds[i] {
            continue;
        }
        for q in st.disjoint_of(p) {
            if preds.get(q.index()).copied().unwrap_or(false) {
                return Some(format!("claimed p{i} ⟂ p{} but observed both true", q.0));
            }
        }
        for q in st.subset_of(p) {
            if !preds.get(q.index()).copied().unwrap_or(false) {
                return Some(format!(
                    "claimed p{i} ⊆ p{} but observed p{i} ∧ ¬p{}",
                    q.0, q.0
                ));
            }
        }
    }
    for &[a, b, t] in st.partitions() {
        let active = t == TOP || preds.get(t as usize).copied().unwrap_or(false);
        let spanned = preds.get(a as usize).copied().unwrap_or(false)
            || preds.get(b as usize).copied().unwrap_or(false);
        if active && !spanned {
            let rhs = if t == TOP {
                "⊤".to_string()
            } else {
                format!("p{t}")
            };
            return Some(format!(
                "claimed p{a} ∨ p{b} ⊇ {rhs} but observed neither true"
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Model, Pipeline};
    use hyperpred_emu::Emulator;
    use hyperpred_lang::lower::entry_args;
    use hyperpred_sched::MachineConfig;
    use hyperpred_workloads::{by_name, Scale};

    fn compiled_wc() -> (Module, Vec<i64>) {
        let w = by_name("wc", Scale::Test).unwrap();
        let pipe = Pipeline {
            checks: true,
            ..Pipeline::default()
        };
        let module = pipe
            .compile(
                &w.source,
                &w.args,
                Model::FullPred,
                &MachineConfig::new(8, 1),
            )
            .unwrap();
        (module, entry_args(&w.args))
    }

    /// A clean full-predication compile runs with zero refuted claims and
    /// a nonzero audit count (the oracle genuinely engaged).
    #[test]
    fn clean_module_passes_the_dynamic_audit() {
        let (module, args) = compiled_wc();
        let claims = PredClaims::build(&module);
        assert!(!claims.is_empty(), "wc must produce predicated code");
        let mut sink = PredOracleSink::new(&claims);
        Emulator::new(&module)
            .run("main", &args, &mut sink)
            .expect("wc runs");
        assert!(sink.checked > 0, "no predicate writes were audited");
        assert_eq!(sink.violation, None);
    }

    /// Corrupting one claimed state (an extra disjointness bit the code
    /// never established) is refuted by the first dynamic witness.
    #[test]
    fn corrupted_claim_is_refuted_by_execution() {
        let (module, args) = compiled_wc();
        let mut claims = PredClaims::build(&module);
        let mut corrupted = 0;
        for points in &mut claims.per_func {
            for st in points.values_mut() {
                // `sabotage` asserts p0 ⟂ p1 (one-sided); on states where
                // the program makes both true the oracle must object.
                if st.sabotage() {
                    corrupted += 1;
                }
            }
        }
        assert!(corrupted > 0, "wc claims must be corruptible");
        let mut sink = PredOracleSink::new(&claims);
        let _ = Emulator::new(&module).run("main", &args, &mut sink);
        assert!(
            sink.violation
                .as_deref()
                .is_some_and(|v| v.contains("⟂") || v.contains("= 0") || v.contains("= 1")),
            "expected a refuted claim, got {:?}",
            sink.violation
        );
    }
}
