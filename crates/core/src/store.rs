//! Content-addressed result store: the multi-writer generalization of
//! [`RunJournal`](crate::journal::RunJournal).
//!
//! A [`Store`] is a *directory* of append-only JSONL segments rather than
//! a single file. Every writer — a thread holding its own `Store` handle,
//! or a whole separate process — owns a private segment created with
//! `O_EXCL` (`create_new`), so concurrent writers can never interleave
//! bytes no matter how they are scheduled or killed. Reads merge every
//! segment in the directory through the same first-write-wins /
//! conflict-quarantine index the journal uses, so the merged view of N
//! concurrent writers is bit-identical to a serial run (and any true
//! fingerprint conflict is detected and refused, never arbitrated).
//!
//! # Layout
//!
//! ```text
//! store/
//!   seg-00012345-0000.jsonl   # one segment per writer (pid + counter)
//!   seg-00012345-0001.jsonl
//!   seg-00098765-0000.jsonl   # another process
//!   compact.lock              # present only while a compaction runs
//!   tmp-compact-00012345      # compaction scratch; never read as a segment
//!   quarantine/               # written only by `hyperpredc fsck --repair`
//! ```
//!
//! Each segment uses the exact journal line format (meta line first, one
//! checksummed `cell` record per line), so a segment *is* a valid
//! `RunJournal` file and inherits its crash tolerance: a torn trailing
//! line is expected damage, mid-file garbage or a checksum-failing line
//! is counted as corruption and never served.
//!
//! # Durability
//!
//! All file I/O flows through an injectable [`Vfs`], which is how the
//! crash-point sweeps in `crates/core/tests/crash.rs` prove the claims
//! below. Appends are flushed on every [`Store::put`] and fsynced per
//! the configured [`SyncPolicy`]; [`Store::sync`] forces an fsync (the
//! daemon calls it on drain, and compaction always fsyncs both the
//! compacted file and the directory). Against `kill -9` every `put`
//! that returned `Ok` survives; against power loss the survivors are
//! the records covered by the last successful fsync — see the
//! durability table in DESIGN.md §10.
//!
//! # Compaction
//!
//! [`Store::compact`] merges every segment into a single fresh segment,
//! dropping exact-duplicate lines and corrupt lines but *keeping both
//! sides of every conflicted fingerprint* — a conflict is evidence of a
//! fingerprint-scheme bug or a damaged writer and must survive rewrites
//! so a plain re-open still detects it. Compactors serialize on
//! `compact.lock`; a lock left behind by a crashed compactor is detected
//! via pid-liveness and age and stolen instead of wedging forever. The
//! merge is published crash-safely: scratch goes to a `tmp-` name the
//! segment globber never matches, the scratch file is fsynced before the
//! rename, the writer handle rotates onto a fresh segment *before* any
//! old segment is deleted, and the directory is fsynced after the rename
//! and after the deletes — at every crash point a reopen serves either
//! the old segments, or the new one, or both (duplicates merge), never a
//! partial state. Compaction snapshots the segment list at start and
//! deletes only those files, so a segment created *by a new writer*
//! mid-compaction survives; an append racing into a snapshotted segment
//! of a *live foreign writer* can be lost, which is why compaction is
//! specified to run only when other writers are quiescent (the daemon
//! compacts from its own maintenance path).

use hyperpred_sim::SimStats;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use crate::journal::{
    cell_line, is_expected_skip, parse_cell_line, CellIndex, JournalConflict, JournalEntry,
    RecordOutcome, JOURNAL_VERSION,
};
use crate::vfs::{Vfs, VfsFile};

/// When segment appends are fsynced. Flushing (userspace → kernel)
/// happens on every [`Store::put`] regardless, so `kill -9` never loses
/// an acked record under any policy; the policy decides what survives
/// power loss / kernel panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync from `put` — only [`Store::sync`] and compaction
    /// make records durable.
    Never,
    /// Fsync once every `n` appended records (`0` behaves like
    /// [`SyncPolicy::Never`]).
    EveryN(u32),
    /// Fsync on every `put` before it returns: `Ok` means durable.
    Always,
}

impl Default for SyncPolicy {
    /// Every 32 appends: bounded power-loss exposure at append speed.
    fn default() -> SyncPolicy {
        SyncPolicy::EveryN(32)
    }
}

/// How long a `compact.lock` may sit before it is considered abandoned
/// even when its recorded pid appears alive (pid recycling, or an
/// unreadable lock file). Real compactions finish in well under this.
pub const DEFAULT_LOCK_STALE_AFTER: Duration = Duration::from_secs(300);

/// Configuration for [`Store::open_with`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// The I/O layer; [`Vfs::real`] outside fault-injection tests.
    pub vfs: Vfs,
    /// Append fsync policy.
    pub sync: SyncPolicy,
    /// Age past which a `compact.lock` is stealable regardless of pid.
    pub lock_stale_after: Duration,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            vfs: Vfs::real(),
            sync: SyncPolicy::default(),
            lock_stale_after: DEFAULT_LOCK_STALE_AFTER,
        }
    }
}

/// What a [`Store::compact`] run did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Segments merged (and deleted) by this compaction.
    pub segments_merged: usize,
    /// Cell lines read across all merged segments.
    pub lines_in: usize,
    /// Cell lines written to the compacted segment.
    pub lines_out: usize,
    /// Exact-duplicate cell lines dropped.
    pub duplicates_dropped: usize,
    /// Corrupt (unparseable, non-torn-tail) lines dropped.
    pub corrupt_dropped: usize,
    /// Conflicted fingerprints whose competing lines were all preserved.
    pub conflicts_kept: usize,
}

/// The active segment a `Store` handle appends to.
struct SegmentWriter {
    path: PathBuf,
    file: VfsFile,
    /// Appends since the last successful fsync (drives `EveryN`).
    unsynced: u32,
}

/// A multi-writer content-addressed store of cell results keyed by the
/// journal fingerprint. See the module docs for layout and semantics.
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    index: Mutex<CellIndex>,
    writer: Mutex<SegmentWriter>,
    corrupt: AtomicUsize,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("cells", &self.len())
            .field("conflicts", &self.conflicts())
            .finish()
    }
}

/// Name of the compaction mutex file inside the store directory.
pub(crate) const COMPACT_LOCK: &str = "compact.lock";

/// Prefix of compaction/fsck scratch files. Never matched by
/// [`is_segment_name`], so a crash can leave one behind without it ever
/// being served; `fsck` removes orphans.
pub(crate) const TMP_PREFIX: &str = "tmp-";

/// True for file names the segment globber serves.
pub(crate) fn is_segment_name(name: &str) -> bool {
    name.starts_with("seg-") && name.ends_with(".jsonl")
}

/// Returns the sorted list of segment files in `dir`. Sorted by file
/// name so every reader merges in the same deterministic order (which
/// fixes the `kept`/`rejected` roles of a conflict).
fn segment_paths(vfs: &Vfs, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segs = Vec::new();
    for path in vfs.read_dir_paths(dir)? {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if is_segment_name(&name) {
            segs.push(path);
        }
    }
    segs.sort();
    Ok(segs)
}

/// Classifies the unparseable lines of one segment exactly like
/// `RunJournal::open`: meta records, foreign-version cells, and a torn
/// *final* line are expected; anything else — including a
/// checksum-failing line — counts as corruption.
pub(crate) fn scan_segment(
    content: &str,
    mut on_cell: impl FnMut(&str, String, SimStats),
    corrupt: &mut usize,
) {
    let lines: Vec<&str> = content.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some((fp, stats)) = parse_cell_line(line) {
            on_cell(line, fp, stats);
            continue;
        }
        if !is_expected_skip(line, idx + 1 == lines.len()) {
            *corrupt += 1;
        }
    }
}

/// Reads every segment into a fresh index. Returns the rebuilt index and
/// the total corrupt-line count across segments.
fn load_dir(vfs: &Vfs, dir: &Path) -> io::Result<(CellIndex, usize)> {
    let mut index = CellIndex::default();
    let mut corrupt = 0usize;
    for seg in segment_paths(vfs, dir)? {
        let content = match vfs.read_to_string(&seg) {
            Ok(s) => s,
            // A compactor may delete a segment between listing and read.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        scan_segment(
            &content,
            |_line, fp, stats| {
                index.insert(&fp, stats);
            },
            &mut corrupt,
        );
    }
    Ok((index, corrupt))
}

/// The meta line opening every segment.
fn meta_line() -> String {
    format!(
        "{{\"kind\":\"meta\",\"version\":{JOURNAL_VERSION},\"crate_version\":\"{}\"}}\n",
        env!("CARGO_PKG_VERSION")
    )
}

/// Creates a brand-new segment file owned exclusively by this writer.
/// `create_new` (`O_EXCL`) makes the claim atomic across processes.
fn create_segment(vfs: &Vfs, dir: &Path) -> io::Result<SegmentWriter> {
    let pid = std::process::id();
    for n in 0u32..10_000 {
        let path = dir.join(format!("seg-{pid:08}-{n:04}.jsonl"));
        match vfs.create_new(&path) {
            Ok(mut file) => {
                file.write_all(meta_line().as_bytes())?;
                file.flush()?;
                return Ok(SegmentWriter {
                    path,
                    file,
                    unsynced: 0,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other(
        "store: exhausted segment names for this pid",
    ))
}

/// Best-effort pid liveness: `Some(alive)` where the platform exposes
/// `/proc`, `None` where it does not (callers fall back to lock age).
fn pid_alive(pid: u32) -> Option<bool> {
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        Some(proc_dir.join(pid.to_string()).is_dir())
    } else {
        None
    }
}

/// True when the `compact.lock` at `path` is abandoned: its recorded
/// owner is provably dead, or the file is older than `stale_after`
/// (which covers pid recycling, an unreadable/torn lock file, and
/// platforms without `/proc`). A live foreign pid with a fresh lock is
/// an active compaction and is respected.
pub(crate) fn lock_is_stale(vfs: &Vfs, path: &Path, stale_after: Duration) -> bool {
    let owner = vfs
        .read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok());
    if let Some(pid) = owner {
        // Our own pid proves nothing: we may be the process that crashed
        // a previous compaction mid-flight and left the lock behind.
        if pid != std::process::id() && pid_alive(pid) == Some(false) {
            return true;
        }
    }
    let age = std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| std::time::SystemTime::now().duration_since(t).ok());
    match age {
        Some(age) => age >= stale_after,
        // Lock vanished mid-check or the clock is skewed: treat as live;
        // the next attempt re-evaluates.
        None => false,
    }
}

/// Holds `compact.lock` for the duration of a compaction; removing the
/// file on drop releases the lock even on an error path. A crash skips
/// the drop — which is exactly what the staleness check recovers from.
struct CompactLock {
    vfs: Vfs,
    path: PathBuf,
}

impl CompactLock {
    fn acquire(vfs: &Vfs, dir: &Path, stale_after: Duration) -> io::Result<CompactLock> {
        let path = dir.join(COMPACT_LOCK);
        for steal_attempted in [false, true] {
            match vfs.create_new(&path) {
                Ok(mut f) => {
                    // The pid is advisory (drives staleness detection);
                    // failing to record it degrades detection, not
                    // correctness, so errors are not fatal here.
                    let _ = f.write_all(format!("{}\n", std::process::id()).as_bytes());
                    return Ok(CompactLock {
                        vfs: vfs.clone(),
                        path,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if !steal_attempted && lock_is_stale(vfs, &path, stale_after) {
                        match vfs.remove_file(&path) {
                            // Stolen (or a racer beat us to the steal);
                            // retry the exclusive create once.
                            Ok(()) => continue,
                            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "store: compaction already in progress (compact.lock held by a live owner)",
                    ));
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("second acquire attempt always returns");
    }
}

impl Drop for CompactLock {
    fn drop(&mut self) {
        let _ = self.vfs.remove_file(&self.path);
    }
}

impl Store {
    /// Opens the store at `dir` with the default configuration (real
    /// I/O, `EveryN(32)` fsync policy).
    ///
    /// # Errors
    /// Fails only on I/O errors; damaged segment *contents* are tolerated
    /// and counted (see [`Store::corrupt`]), exactly like the journal.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        Store::open_with(dir, StoreConfig::default())
    }

    /// Opens the store at `dir` (creating the directory if absent) with
    /// an explicit [`StoreConfig`], loads every segment into the index,
    /// and claims a fresh private segment for this handle's appends.
    pub fn open_with(dir: impl AsRef<Path>, cfg: StoreConfig) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        cfg.vfs.create_dir_all(&dir)?;
        let (index, corrupt) = load_dir(&cfg.vfs, &dir)?;
        let writer = create_segment(&cfg.vfs, &dir)?;
        Ok(Store {
            dir,
            cfg,
            index: Mutex::new(index),
            writer: Mutex::new(writer),
            corrupt: AtomicUsize::new(corrupt),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The segment file this handle appends to.
    pub fn segment_path(&self) -> PathBuf {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .path
            .clone()
    }

    /// Number of keys served by [`Store::get`] (conflicted keys excluded).
    pub fn len(&self) -> usize {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corrupt lines skipped across all segments at the last full scan
    /// ([`Store::open`] or [`Store::refresh`]).
    pub fn corrupt(&self) -> usize {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Number of conflicted fingerprints (see [`JournalConflict`]).
    pub fn conflicts(&self) -> usize {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .conflicts()
    }

    /// Every detected conflict, sorted by fingerprint.
    pub fn conflict_report(&self) -> Vec<JournalConflict> {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .conflict_report()
    }

    /// True when `fingerprint` has been quarantined by a conflict.
    pub fn is_conflicted(&self, fingerprint: &str) -> bool {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_conflicted(fingerprint)
    }

    /// The stored stats for `fingerprint`, if any. A conflicted key is
    /// never served.
    pub fn get(&self, fingerprint: &str) -> Option<SimStats> {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(fingerprint)
    }

    /// Stores one completed cell: classified against the index exactly
    /// like [`RunJournal::record`](crate::journal::RunJournal::record)
    /// (duplicate → no write, conflict → quarantined but still appended
    /// so a reload re-detects it), then appended to this handle's private
    /// segment, flushed, and fsynced per the configured [`SyncPolicy`].
    ///
    /// # Errors
    /// Fails on I/O errors; the index is updated regardless, so a full
    /// disk degrades durability, not correctness, of the current process.
    pub fn put(&self, entry: &JournalEntry<'_>) -> io::Result<RecordOutcome> {
        let line = cell_line(entry);
        let outcome = self
            .index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(entry.fingerprint, entry.stats.clone());
        if outcome == RecordOutcome::Duplicate {
            return Ok(outcome);
        }
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        writer.file.write_all(line.as_bytes())?;
        writer.file.flush()?;
        writer.unsynced += 1;
        let due = match self.cfg.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => n > 0 && writer.unsynced >= n,
            SyncPolicy::Never => false,
        };
        if due {
            writer.file.sync_all()?;
            writer.unsynced = 0;
        }
        Ok(outcome)
    }

    /// Fsyncs this handle's segment, making every acked append durable
    /// regardless of policy. The daemon calls this when draining; batch
    /// drivers should call it at checkpoint boundaries under
    /// [`SyncPolicy::Never`]/`EveryN`.
    pub fn sync(&self) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        writer.file.sync_all()?;
        writer.unsynced = 0;
        Ok(())
    }

    /// Rescans every segment in the directory, rebuilding the index from
    /// scratch. This is how one handle observes the appends of *other*
    /// writers (threads with their own handle, or other processes) and
    /// the result of a foreign compaction. The handle's own appends are
    /// always flushed before `put` returns, so they are never lost to a
    /// refresh.
    pub fn refresh(&self) -> io::Result<()> {
        let (index, corrupt) = load_dir(&self.cfg.vfs, &self.dir)?;
        *self.index.lock().unwrap_or_else(PoisonError::into_inner) = index;
        self.corrupt.store(corrupt, Ordering::Relaxed);
        Ok(())
    }

    /// Merges every segment into one fresh segment, dropping duplicate
    /// and corrupt lines but preserving *all* competing lines of every
    /// conflicted fingerprint (conflicts must survive compaction — see
    /// module docs). On success the merged segments are deleted, this
    /// handle rotates onto a new private segment, and the index is
    /// rebuilt from the compacted state.
    ///
    /// Compactors serialize on `compact.lock`; a second concurrent call
    /// fails fast with `ErrorKind::AlreadyExists` unless the lock is
    /// stale (dead owner or past `lock_stale_after`), in which case it
    /// is stolen. Run only while other *writers* are quiescent (see
    /// module docs).
    ///
    /// # Errors
    /// Fails on I/O errors or when a live compaction holds the lock. The
    /// publication order (scratch under a `tmp-` name → fsync → rotate
    /// the writer → rename → fsync dir → delete → fsync dir) means a
    /// crash at any point leaves the old segments, the new one, or both
    /// — never a half-written merge being served.
    pub fn compact(&self) -> io::Result<CompactStats> {
        let vfs = &self.cfg.vfs;
        let _lock = CompactLock::acquire(vfs, &self.dir, self.cfg.lock_stale_after)?;
        // Hold the writer lock across the whole merge: our own appends
        // pause, and the rotation below swaps the handle atomically.
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);

        let segs = segment_paths(vfs, &self.dir)?;
        let mut kept_lines: Vec<String> = Vec::new();
        // Every distinct payload seen per fingerprint, in merge order.
        // One entry → live cell; several → a conflict whose every side
        // is preserved verbatim.
        let mut seen: HashMap<String, Vec<SimStats>> = HashMap::new();
        let mut stats = CompactStats {
            segments_merged: segs.len(),
            lines_in: 0,
            lines_out: 0,
            duplicates_dropped: 0,
            corrupt_dropped: 0,
            conflicts_kept: 0,
        };
        for seg in &segs {
            let content = vfs.read_to_string(seg)?;
            let mut corrupt = 0usize;
            scan_segment(
                &content,
                |line, fp, cell_stats| {
                    stats.lines_in += 1;
                    let payloads = seen.entry(fp).or_default();
                    if payloads.contains(&cell_stats) {
                        stats.duplicates_dropped += 1;
                    } else {
                        payloads.push(cell_stats);
                        kept_lines.push(format!("{line}\n"));
                    }
                },
                &mut corrupt,
            );
            stats.corrupt_dropped += corrupt;
        }
        stats.lines_out = kept_lines.len();
        stats.conflicts_kept = seen.values().filter(|p| p.len() > 1).count();

        // Write the merge to a scratch name the segment globber never
        // matches, and fsync it before it can be renamed into service.
        let tmp = self
            .dir
            .join(format!("{TMP_PREFIX}compact-{:08}", std::process::id()));
        {
            let mut buf = meta_line();
            for line in &kept_lines {
                buf.push_str(line);
            }
            let mut f = vfs.create(&tmp)?;
            f.write_all(buf.as_bytes())?;
            f.sync_all()?;
        }
        // Rotate this handle onto a fresh private segment *before* any
        // rename or delete: from here on, no failure can leave the
        // handle appending into a deleted file.
        *writer = create_segment(vfs, &self.dir)?;
        // Claim a fresh segment name and atomically replace its meta
        // line with the merged content (same meta line first).
        let compacted = create_segment(vfs, &self.dir)?;
        vfs.rename(&tmp, &compacted.path)?;
        vfs.sync_dir(&self.dir)?;
        for seg in &segs {
            if *seg == compacted.path || *seg == writer.path {
                continue;
            }
            match vfs.remove_file(seg) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        vfs.sync_dir(&self.dir)?;
        drop(writer);

        self.refresh()?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Model;
    use std::fs::{self, OpenOptions};
    use std::io::Write;

    fn stats(seed: u64) -> SimStats {
        SimStats {
            cycles: seed,
            insts: seed + 1,
            nullified: seed + 2,
            branches: seed + 3,
            mispredicts: seed + 4,
            loads: seed + 5,
            stores: seed + 6,
            icache_misses: seed + 7,
            dcache_misses: seed + 8,
            ret: -(seed as i64),
        }
    }

    fn entry<'a>(fp: &'a str, s: &'a SimStats) -> JournalEntry<'a> {
        JournalEntry {
            fingerprint: fp,
            workload: "w",
            experiment: "baseline",
            model: Some(Model::FullPred),
            stats: s,
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyperpred-store-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_and_reload() {
        let dir = fresh_dir("basic");
        let s1 = stats(10);
        {
            let store = Store::open(&dir).unwrap();
            assert!(store.is_empty());
            assert_eq!(
                store.put(&entry("aa", &s1)).unwrap(),
                RecordOutcome::Appended
            );
            assert_eq!(
                store.put(&entry("aa", &s1)).unwrap(),
                RecordOutcome::Duplicate
            );
            assert_eq!(store.get("aa"), Some(s1.clone()));
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("aa"), Some(s1));
        assert_eq!(store.corrupt(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_handles_never_interleave_and_merge_on_refresh() {
        let dir = fresh_dir("two-handles");
        let a = Store::open(&dir).unwrap();
        let b = Store::open(&dir).unwrap();
        assert_ne!(a.segment_path(), b.segment_path(), "private segments");
        let s1 = stats(1);
        let s2 = stats(2);
        a.put(&entry("aa", &s1)).unwrap();
        b.put(&entry("bb", &s2)).unwrap();
        assert_eq!(a.get("bb"), None, "b's append not yet visible to a");
        a.refresh().unwrap();
        assert_eq!(a.get("bb"), Some(s2));
        assert_eq!(a.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicts_quarantine_and_survive_compaction() {
        let dir = fresh_dir("conflict-compact");
        let s1 = stats(1);
        let s2 = stats(2);
        let store = Store::open(&dir).unwrap();
        store.put(&entry("aa", &s1)).unwrap();
        assert_eq!(
            store.put(&entry("aa", &s2)).unwrap(),
            RecordOutcome::Conflict
        );
        assert_eq!(store.get("aa"), None, "conflicted key refused");
        assert_eq!(store.conflicts(), 1);
        let report = store.conflict_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].kept, s1);
        assert_eq!(report[0].rejected, s2);

        let cstats = store.compact().unwrap();
        assert_eq!(cstats.conflicts_kept, 1);
        assert_eq!(cstats.lines_out, 2, "both sides of the conflict kept");
        assert_eq!(store.conflicts(), 1, "conflict survives compaction");
        assert_eq!(store.get("aa"), None);

        // A brand-new open of the compacted directory re-detects it too.
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.conflicts(), 1);
        assert_eq!(reopened.get("aa"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_merges_segments_and_drops_duplicates() {
        let dir = fresh_dir("compact-merge");
        let s1 = stats(1);
        let s2 = stats(2);
        {
            // Both handles open before either writes: neither sees the
            // other's append, so `aa` genuinely lands in two segments
            // (a handle opened later would dedup it in memory).
            let a = Store::open(&dir).unwrap();
            let b = Store::open(&dir).unwrap();
            a.put(&entry("aa", &s1)).unwrap();
            assert_eq!(b.put(&entry("aa", &s1)).unwrap(), RecordOutcome::Appended);
            b.put(&entry("bb", &s2)).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        let vfs = Vfs::real();
        let before = segment_paths(&vfs, &dir).unwrap().len();
        assert!(before >= 3, "three writers → three segments");
        let cstats = store.compact().unwrap();
        assert_eq!(cstats.duplicates_dropped, 1);
        assert_eq!(cstats.lines_out, 2);
        // One compacted segment plus the handle's fresh private segment.
        assert_eq!(segment_paths(&vfs, &dir).unwrap().len(), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("aa"), Some(s1));
        assert_eq!(store.get("bb"), Some(s2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_lock_is_exclusive_while_owner_lives() {
        let dir = fresh_dir("compact-lock");
        let store = Store::open(&dir).unwrap();
        let vfs = Vfs::real();
        // A fresh lock naming a live pid (ours) must be respected: the
        // age guard alone cannot steal it.
        let lock = CompactLock::acquire(&vfs, &dir, DEFAULT_LOCK_STALE_AFTER).unwrap();
        let err = store.compact().expect_err("lock held");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        drop(lock);
        store.compact().expect("lock released on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_dead_pid_is_stolen() {
        let dir = fresh_dir("stale-lock-pid");
        let store = Store::open(&dir).unwrap();
        store.put(&entry("aa", &stats(1))).unwrap();
        // A lock naming a pid that cannot exist (far beyond pid_max):
        // the owner is provably dead, so compaction steals it even
        // though the file is brand new.
        fs::write(dir.join(COMPACT_LOCK), "999999999\n").unwrap();
        store.compact().expect("dead owner's lock is stolen");
        assert!(!dir.join(COMPACT_LOCK).exists(), "stolen lock released");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_lock_is_stolen_by_age() {
        let dir = fresh_dir("stale-lock-age");
        let cfg = StoreConfig {
            lock_stale_after: Duration::ZERO,
            ..StoreConfig::default()
        };
        let store = Store::open_with(&dir, cfg).unwrap();
        store.put(&entry("aa", &stats(1))).unwrap();
        // Garbage contents: no pid to check, so only age applies — and
        // with a zero threshold the lock is immediately stealable.
        fs::write(dir.join(COMPACT_LOCK), "not a pid").unwrap();
        store.compact().expect("aged-out lock is stolen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_tolerated_per_segment() {
        let dir = fresh_dir("torn");
        let s1 = stats(1);
        let seg_path = {
            let store = Store::open(&dir).unwrap();
            store.put(&entry("aa", &s1)).unwrap();
            store.segment_path()
        };
        // Simulate a crash mid-append in that segment.
        let mut f = OpenOptions::new().append(true).open(&seg_path).unwrap();
        write!(f, "{{\"kind\":\"cell\",\"version\":2,\"fp\":\"bb\",\"cyc").unwrap();
        drop(f);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.corrupt(), 0, "torn tail is expected, not corrupt");
        assert_eq!(store.get("aa"), Some(s1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_policies_fsync_as_specified() {
        // No crash here (that's tests/crash.rs); this pins the op
        // accounting: Always syncs per put, EveryN(2) every second put.
        let dir = fresh_dir("sync-policy");
        let vfs = Vfs::real();
        let cfg = StoreConfig {
            vfs: vfs.clone(),
            sync: SyncPolicy::Always,
            ..StoreConfig::default()
        };
        let store = Store::open_with(&dir, cfg).unwrap();
        let base = vfs.ops();
        store.put(&entry("aa", &stats(1))).unwrap();
        assert_eq!(vfs.ops() - base, 2, "Always: write + fsync");

        let dir2 = fresh_dir("sync-policy-n");
        let vfs2 = Vfs::real();
        let cfg2 = StoreConfig {
            vfs: vfs2.clone(),
            sync: SyncPolicy::EveryN(2),
            ..StoreConfig::default()
        };
        let store2 = Store::open_with(&dir2, cfg2).unwrap();
        let base2 = vfs2.ops();
        store2.put(&entry("aa", &stats(1))).unwrap();
        store2.put(&entry("bb", &stats(2))).unwrap();
        assert_eq!(vfs2.ops() - base2, 3, "EveryN(2): write, write + fsync");
        store2.sync().unwrap();
        assert_eq!(vfs2.ops() - base2, 4, "explicit sync is one fsync");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }
}
