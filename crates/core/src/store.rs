//! Content-addressed result store: the multi-writer generalization of
//! [`RunJournal`](crate::journal::RunJournal).
//!
//! A [`Store`] is a *directory* of append-only JSONL segments rather than
//! a single file. Every writer — a thread holding its own `Store` handle,
//! or a whole separate process — owns a private segment created with
//! `O_EXCL` (`create_new`), so concurrent writers can never interleave
//! bytes no matter how they are scheduled or killed. Reads merge every
//! segment in the directory through the same first-write-wins /
//! conflict-quarantine index the journal uses, so the merged view of N
//! concurrent writers is bit-identical to a serial run (and any true
//! fingerprint conflict is detected and refused, never arbitrated).
//!
//! # Layout
//!
//! ```text
//! store/
//!   seg-00012345-0000.jsonl   # one segment per writer (pid + counter)
//!   seg-00012345-0001.jsonl
//!   seg-00098765-0000.jsonl   # another process
//!   compact.lock              # present only while a compaction runs
//! ```
//!
//! Each segment uses the exact journal line format (meta line first, one
//! `cell` record per line), so a segment *is* a valid `RunJournal` file
//! and inherits its crash tolerance: a torn trailing line is expected
//! damage, mid-file garbage is counted as corruption.
//!
//! # Compaction
//!
//! [`Store::compact`] merges every segment into a single fresh segment,
//! dropping exact-duplicate lines and corrupt lines but *keeping both
//! sides of every conflicted fingerprint* — a conflict is evidence of a
//! fingerprint-scheme bug or a damaged writer and must survive rewrites
//! so a plain re-open still detects it. Compactors serialize on
//! `compact.lock` (`create_new`, removed on drop). Compaction snapshots
//! the segment list at start and deletes only those files, so a segment
//! created *by a new writer* mid-compaction survives; an append racing
//! into a snapshotted segment of a *live foreign writer* can be lost,
//! which is why compaction is specified to run only when other writers
//! are quiescent (the daemon compacts from its own maintenance path).

use hyperpred_sim::SimStats;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::journal::{
    cell_line, field_str, field_u64, parse_cell_line, CellIndex, JournalConflict, JournalEntry,
    RecordOutcome, JOURNAL_VERSION,
};

/// What a [`Store::compact`] run did, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Segments merged (and deleted) by this compaction.
    pub segments_merged: usize,
    /// Cell lines read across all merged segments.
    pub lines_in: usize,
    /// Cell lines written to the compacted segment.
    pub lines_out: usize,
    /// Exact-duplicate cell lines dropped.
    pub duplicates_dropped: usize,
    /// Corrupt (unparseable, non-torn-tail) lines dropped.
    pub corrupt_dropped: usize,
    /// Conflicted fingerprints whose competing lines were all preserved.
    pub conflicts_kept: usize,
}

/// The active segment a `Store` handle appends to.
struct SegmentWriter {
    path: PathBuf,
    file: File,
}

/// A multi-writer content-addressed store of cell results keyed by the
/// journal fingerprint. See the module docs for layout and semantics.
pub struct Store {
    dir: PathBuf,
    index: Mutex<CellIndex>,
    writer: Mutex<SegmentWriter>,
    corrupt: AtomicUsize,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("cells", &self.len())
            .field("conflicts", &self.conflicts())
            .finish()
    }
}

/// Name of the compaction mutex file inside the store directory.
const COMPACT_LOCK: &str = "compact.lock";

/// Returns the sorted list of segment files in `dir`. Sorted by file
/// name so every reader merges in the same deterministic order (which
/// fixes the `kept`/`rejected` roles of a conflict).
fn segment_paths(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("seg-") && name.ends_with(".jsonl") {
            segs.push(entry.path());
        }
    }
    segs.sort();
    Ok(segs)
}

/// Classifies the unparseable lines of one segment exactly like
/// `RunJournal::open`: meta records, foreign-version cells, and a torn
/// *final* line are expected; anything else counts as corruption.
fn scan_segment(
    content: &str,
    mut on_cell: impl FnMut(&str, String, SimStats),
    corrupt: &mut usize,
) {
    let lines: Vec<&str> = content.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some((fp, stats)) = parse_cell_line(line) {
            on_cell(line, fp, stats);
            continue;
        }
        let kind = field_str(line, "kind");
        let is_meta = kind.as_deref() == Some("meta");
        let is_foreign_cell = kind.as_deref() == Some("cell")
            && field_u64(line, "version").is_some_and(|v| v != JOURNAL_VERSION);
        let is_torn_tail = idx + 1 == lines.len() && !line.trim_end().ends_with('}');
        if !is_meta && !is_foreign_cell && !is_torn_tail {
            *corrupt += 1;
        }
    }
}

/// Reads every segment into a fresh index. Returns the rebuilt index and
/// the total corrupt-line count across segments.
fn load_dir(dir: &Path) -> io::Result<(CellIndex, usize)> {
    let mut index = CellIndex::default();
    let mut corrupt = 0usize;
    for seg in segment_paths(dir)? {
        let content = match fs::read_to_string(&seg) {
            Ok(s) => s,
            // A compactor may delete a segment between listing and read.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        scan_segment(
            &content,
            |_line, fp, stats| {
                index.insert(&fp, stats);
            },
            &mut corrupt,
        );
    }
    Ok((index, corrupt))
}

/// Creates a brand-new segment file owned exclusively by this writer.
/// `create_new` (`O_EXCL`) makes the claim atomic across processes.
fn create_segment(dir: &Path) -> io::Result<SegmentWriter> {
    let pid = std::process::id();
    for n in 0u32..10_000 {
        let path = dir.join(format!("seg-{pid:08}-{n:04}.jsonl"));
        match OpenOptions::new().create_new(true).append(true).open(&path) {
            Ok(mut file) => {
                let meta = format!(
                    "{{\"kind\":\"meta\",\"version\":{JOURNAL_VERSION},\"crate_version\":\"{}\"}}\n",
                    env!("CARGO_PKG_VERSION")
                );
                file.write_all(meta.as_bytes())?;
                file.flush()?;
                return Ok(SegmentWriter { path, file });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other(
        "store: exhausted segment names for this pid",
    ))
}

/// Holds `compact.lock` for the duration of a compaction; removing the
/// file on drop releases the lock even on an error path.
struct CompactLock {
    path: PathBuf,
}

impl CompactLock {
    fn acquire(dir: &Path) -> io::Result<CompactLock> {
        let path = dir.join(COMPACT_LOCK);
        match OpenOptions::new().create_new(true).write(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                Ok(CompactLock { path })
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "store: compaction already in progress (compact.lock exists)",
            )),
            Err(e) => Err(e),
        }
    }
}

impl Drop for CompactLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

impl Store {
    /// Opens the store at `dir` (creating the directory if absent), loads
    /// every segment into the index, and claims a fresh private segment
    /// for this handle's appends.
    ///
    /// # Errors
    /// Fails only on I/O errors; damaged segment *contents* are tolerated
    /// and counted (see [`Store::corrupt`]), exactly like the journal.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (index, corrupt) = load_dir(&dir)?;
        let writer = create_segment(&dir)?;
        Ok(Store {
            dir,
            index: Mutex::new(index),
            writer: Mutex::new(writer),
            corrupt: AtomicUsize::new(corrupt),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The segment file this handle appends to.
    pub fn segment_path(&self) -> PathBuf {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .path
            .clone()
    }

    /// Number of keys served by [`Store::get`] (conflicted keys excluded).
    pub fn len(&self) -> usize {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corrupt lines skipped across all segments at the last full scan
    /// ([`Store::open`] or [`Store::refresh`]).
    pub fn corrupt(&self) -> usize {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Number of conflicted fingerprints (see [`JournalConflict`]).
    pub fn conflicts(&self) -> usize {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .conflicts()
    }

    /// Every detected conflict, sorted by fingerprint.
    pub fn conflict_report(&self) -> Vec<JournalConflict> {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .conflict_report()
    }

    /// True when `fingerprint` has been quarantined by a conflict.
    pub fn is_conflicted(&self, fingerprint: &str) -> bool {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_conflicted(fingerprint)
    }

    /// The stored stats for `fingerprint`, if any. A conflicted key is
    /// never served.
    pub fn get(&self, fingerprint: &str) -> Option<SimStats> {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(fingerprint)
    }

    /// Stores one completed cell: classified against the index exactly
    /// like [`RunJournal::record`](crate::journal::RunJournal::record)
    /// (duplicate → no write, conflict → quarantined but still appended
    /// so a reload re-detects it), then appended to this handle's private
    /// segment and flushed.
    ///
    /// # Errors
    /// Fails on I/O errors; the index is updated regardless, so a full
    /// disk degrades durability, not correctness, of the current process.
    pub fn put(&self, entry: &JournalEntry<'_>) -> io::Result<RecordOutcome> {
        let line = cell_line(entry);
        let outcome = self
            .index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(entry.fingerprint, entry.stats.clone());
        if outcome == RecordOutcome::Duplicate {
            return Ok(outcome);
        }
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        writer.file.write_all(line.as_bytes())?;
        writer.file.flush()?;
        Ok(outcome)
    }

    /// Rescans every segment in the directory, rebuilding the index from
    /// scratch. This is how one handle observes the appends of *other*
    /// writers (threads with their own handle, or other processes) and
    /// the result of a foreign compaction. The handle's own appends are
    /// always flushed before `put` returns, so they are never lost to a
    /// refresh.
    pub fn refresh(&self) -> io::Result<()> {
        let (index, corrupt) = load_dir(&self.dir)?;
        *self.index.lock().unwrap_or_else(PoisonError::into_inner) = index;
        self.corrupt.store(corrupt, Ordering::Relaxed);
        Ok(())
    }

    /// Merges every segment into one fresh segment, dropping duplicate
    /// and corrupt lines but preserving *all* competing lines of every
    /// conflicted fingerprint (conflicts must survive compaction — see
    /// module docs). On success the merged segments are deleted, this
    /// handle rotates onto a new private segment, and the index is
    /// rebuilt from the compacted state.
    ///
    /// Compactors serialize on `compact.lock`; a second concurrent call
    /// fails fast with `ErrorKind::AlreadyExists`. Run only while other
    /// *writers* are quiescent (see module docs).
    ///
    /// # Errors
    /// Fails on I/O errors or when another compaction holds the lock. The
    /// compacted segment is published with a temp-file + rename, so a
    /// crash mid-compaction leaves either the old segments or the new one
    /// — never a half-written merge being served.
    pub fn compact(&self) -> io::Result<CompactStats> {
        let _lock = CompactLock::acquire(&self.dir)?;
        // Hold the writer lock across the whole merge: our own appends
        // pause, and the rotation below swaps the handle atomically.
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);

        let segs = segment_paths(&self.dir)?;
        let mut kept_lines: Vec<String> = Vec::new();
        // Every distinct payload seen per fingerprint, in merge order.
        // One entry → live cell; several → a conflict whose every side
        // is preserved verbatim.
        let mut seen: HashMap<String, Vec<SimStats>> = HashMap::new();
        let mut stats = CompactStats {
            segments_merged: segs.len(),
            lines_in: 0,
            lines_out: 0,
            duplicates_dropped: 0,
            corrupt_dropped: 0,
            conflicts_kept: 0,
        };
        for seg in &segs {
            let content = fs::read_to_string(seg)?;
            let mut corrupt = 0usize;
            scan_segment(
                &content,
                |line, fp, cell_stats| {
                    stats.lines_in += 1;
                    let payloads = seen.entry(fp).or_default();
                    if payloads.contains(&cell_stats) {
                        stats.duplicates_dropped += 1;
                    } else {
                        payloads.push(cell_stats);
                        kept_lines.push(format!("{line}\n"));
                    }
                },
                &mut corrupt,
            );
            stats.corrupt_dropped += corrupt;
        }
        stats.lines_out = kept_lines.len();
        stats.conflicts_kept = seen.values().filter(|p| p.len() > 1).count();

        // Publish atomically: temp file, sync, rename into a fresh
        // segment name, then delete the merged segments.
        let tmp = self.dir.join("compact.tmp");
        {
            let mut f = File::create(&tmp)?;
            let meta = format!(
                "{{\"kind\":\"meta\",\"version\":{JOURNAL_VERSION},\"crate_version\":\"{}\"}}\n",
                env!("CARGO_PKG_VERSION")
            );
            f.write_all(meta.as_bytes())?;
            for line in &kept_lines {
                f.write_all(line.as_bytes())?;
            }
            f.sync_all()?;
        }
        let compacted = create_segment(&self.dir)?;
        // `create_segment` wrote a meta line; the rename replaces the
        // whole file with the merged content (same meta line first).
        fs::rename(&tmp, &compacted.path)?;
        for seg in &segs {
            if *seg != compacted.path {
                let _ = fs::remove_file(seg);
            }
        }
        // Rotate this handle onto a fresh private segment — its old one
        // was just merged and deleted.
        *writer = create_segment(&self.dir)?;
        drop(writer);

        self.refresh()?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Model;

    fn stats(seed: u64) -> SimStats {
        SimStats {
            cycles: seed,
            insts: seed + 1,
            nullified: seed + 2,
            branches: seed + 3,
            mispredicts: seed + 4,
            loads: seed + 5,
            stores: seed + 6,
            icache_misses: seed + 7,
            dcache_misses: seed + 8,
            ret: -(seed as i64),
        }
    }

    fn entry<'a>(fp: &'a str, s: &'a SimStats) -> JournalEntry<'a> {
        JournalEntry {
            fingerprint: fp,
            workload: "w",
            experiment: "baseline",
            model: Some(Model::FullPred),
            stats: s,
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyperpred-store-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_and_reload() {
        let dir = fresh_dir("basic");
        let s1 = stats(10);
        {
            let store = Store::open(&dir).unwrap();
            assert!(store.is_empty());
            assert_eq!(
                store.put(&entry("aa", &s1)).unwrap(),
                RecordOutcome::Appended
            );
            assert_eq!(
                store.put(&entry("aa", &s1)).unwrap(),
                RecordOutcome::Duplicate
            );
            assert_eq!(store.get("aa"), Some(s1.clone()));
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("aa"), Some(s1));
        assert_eq!(store.corrupt(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_handles_never_interleave_and_merge_on_refresh() {
        let dir = fresh_dir("two-handles");
        let a = Store::open(&dir).unwrap();
        let b = Store::open(&dir).unwrap();
        assert_ne!(a.segment_path(), b.segment_path(), "private segments");
        let s1 = stats(1);
        let s2 = stats(2);
        a.put(&entry("aa", &s1)).unwrap();
        b.put(&entry("bb", &s2)).unwrap();
        assert_eq!(a.get("bb"), None, "b's append not yet visible to a");
        a.refresh().unwrap();
        assert_eq!(a.get("bb"), Some(s2));
        assert_eq!(a.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicts_quarantine_and_survive_compaction() {
        let dir = fresh_dir("conflict-compact");
        let s1 = stats(1);
        let s2 = stats(2);
        let store = Store::open(&dir).unwrap();
        store.put(&entry("aa", &s1)).unwrap();
        assert_eq!(
            store.put(&entry("aa", &s2)).unwrap(),
            RecordOutcome::Conflict
        );
        assert_eq!(store.get("aa"), None, "conflicted key refused");
        assert_eq!(store.conflicts(), 1);
        let report = store.conflict_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].kept, s1);
        assert_eq!(report[0].rejected, s2);

        let cstats = store.compact().unwrap();
        assert_eq!(cstats.conflicts_kept, 1);
        assert_eq!(cstats.lines_out, 2, "both sides of the conflict kept");
        assert_eq!(store.conflicts(), 1, "conflict survives compaction");
        assert_eq!(store.get("aa"), None);

        // A brand-new open of the compacted directory re-detects it too.
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.conflicts(), 1);
        assert_eq!(reopened.get("aa"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_merges_segments_and_drops_duplicates() {
        let dir = fresh_dir("compact-merge");
        let s1 = stats(1);
        let s2 = stats(2);
        {
            // Both handles open before either writes: neither sees the
            // other's append, so `aa` genuinely lands in two segments
            // (a handle opened later would dedup it in memory).
            let a = Store::open(&dir).unwrap();
            let b = Store::open(&dir).unwrap();
            a.put(&entry("aa", &s1)).unwrap();
            assert_eq!(b.put(&entry("aa", &s1)).unwrap(), RecordOutcome::Appended);
            b.put(&entry("bb", &s2)).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        let before = segment_paths(&dir).unwrap().len();
        assert!(before >= 3, "three writers → three segments");
        let cstats = store.compact().unwrap();
        assert_eq!(cstats.duplicates_dropped, 1);
        assert_eq!(cstats.lines_out, 2);
        // One compacted segment plus the handle's fresh private segment.
        assert_eq!(segment_paths(&dir).unwrap().len(), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("aa"), Some(s1));
        assert_eq!(store.get("bb"), Some(s2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_lock_is_exclusive() {
        let dir = fresh_dir("compact-lock");
        let store = Store::open(&dir).unwrap();
        let lock = CompactLock::acquire(&dir).unwrap();
        let err = store.compact().expect_err("lock held");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        drop(lock);
        store.compact().expect("lock released on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_tolerated_per_segment() {
        let dir = fresh_dir("torn");
        let s1 = stats(1);
        let seg_path = {
            let store = Store::open(&dir).unwrap();
            store.put(&entry("aa", &s1)).unwrap();
            store.segment_path()
        };
        // Simulate a crash mid-append in that segment.
        let mut f = OpenOptions::new().append(true).open(&seg_path).unwrap();
        write!(f, "{{\"kind\":\"cell\",\"version\":1,\"fp\":\"bb\",\"cyc").unwrap();
        drop(f);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.corrupt(), 0, "torn tail is expected, not corrupt");
        assert_eq!(store.get("aa"), Some(s1));
        let _ = fs::remove_dir_all(&dir);
    }
}
