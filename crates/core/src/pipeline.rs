//! The per-model compilation pipeline and simulation driver.
//!
//! Compilation runs as a sequence of named [`Stage`]s. After every stage a
//! *checkpoint* runs the structural verifier plus the semantic checkers in
//! [`hyperpred_ir::analysis`] (always in debug builds and tests, opt-in via
//! [`Pipeline::checks`] in release); a failure is reported as
//! [`PipelineError::Lint`] naming the pass that introduced it.

use hyperpred_emu::{EmuError, Emulator, Profiler};
use hyperpred_hyperblock::{
    form_hyperblocks, form_superblocks, promote_bounded, unroll_self_loops, GrowthBudget,
    HyperblockConfig, SuperblockConfig, UnrollConfig,
};
use hyperpred_ir::analysis::{self, ModelClass, Snapshot, Violation};
use hyperpred_ir::{Cfg, FuncId, Module, RelationDb};
use hyperpred_lang::lower::entry_args;
use hyperpred_lang::CompileError;
use hyperpred_partial::{to_partial_module, PartialConfig};
use hyperpred_sched::{schedule_module, MachineConfig, SchedError};
use hyperpred_sim::{simulate, SimConfig, SimError, SimStats};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The three architecture/compiler models the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// No predication: superblock formation + speculation (baseline).
    Superblock,
    /// Partial predication: hyperblocks converted to conditional moves.
    CondMove,
    /// Full predication: hyperblocks with guarded instructions.
    FullPred,
}

impl Model {
    /// The three models in the paper's presentation order.
    pub const ALL: [Model; 3] = [Model::Superblock, Model::CondMove, Model::FullPred];

    /// Position of this model in [`Model::ALL`] (and in every
    /// `[SimStats; 3]` the experiment layer hands out). Infallible by
    /// construction — the match is exhaustive, so no edit to `ALL` can
    /// turn this into a runtime panic.
    pub fn index(self) -> usize {
        match self {
            Model::Superblock => 0,
            Model::CondMove => 1,
            Model::FullPred => 2,
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Model::Superblock => "Superblock",
            Model::CondMove => "Cond. Move",
            Model::FullPred => "Full Pred.",
        };
        f.write_str(s)
    }
}

/// A named pipeline pass, as used for checkpoint blame and the
/// `--sabotage` chaos hook. The order here is the order the passes run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// MiniC lowering to IR.
    Frontend,
    /// Function inlining.
    Inline,
    /// Classic optimization before profiling.
    OptPre,
    /// Hyperblock if-conversion (cmov and full-predication models).
    IfConvert,
    /// Predicate relation analysis: builds the per-function partition
    /// graph ([`hyperpred_ir::RelationDb`]) over the freshly
    /// if-converted module and validates it with the relation-soundness
    /// checker family. Analysis-only — the module is untouched — but a
    /// corrupted or unclosed graph fails the compile blamed on this
    /// stage, and the `--sabotage relations` chaos hook corrupts the
    /// held database (not the IR) to prove that path fires.
    Relations,
    /// Predicate promotion.
    Promote,
    /// Superblock formation.
    Superblock,
    /// Loop unrolling over formed regions.
    Unroll,
    /// Full-to-partial conversion (cmov model only).
    PartialConvert,
    /// Classic optimization after formation/conversion.
    OptPost,
    /// List scheduling for the target machine.
    Schedule,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 11] = [
        Stage::Frontend,
        Stage::Inline,
        Stage::OptPre,
        Stage::IfConvert,
        Stage::Relations,
        Stage::Promote,
        Stage::Superblock,
        Stage::Unroll,
        Stage::PartialConvert,
        Stage::OptPost,
        Stage::Schedule,
    ];

    /// The stage's canonical name (also accepted by [`Stage::from_str`]).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Inline => "inline",
            Stage::OptPre => "opt-pre",
            Stage::IfConvert => "ifconvert",
            Stage::Relations => "relations",
            Stage::Promote => "promote",
            Stage::Superblock => "superblock",
            Stage::Unroll => "unroll",
            Stage::PartialConvert => "partial-convert",
            Stage::OptPost => "opt-post",
            Stage::Schedule => "schedule",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Stage {
    type Err = String;

    fn from_str(s: &str) -> Result<Stage, String> {
        Stage::ALL
            .into_iter()
            .find(|st| st.name() == s)
            .ok_or_else(|| format!("unknown stage `{s}`"))
    }
}

/// A semantic-checkpoint failure: which pass left the module broken, and
/// every violation the checkers found in its output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// The pass after which the checkpoint fired.
    pub pass: Stage,
    /// The violations, in discovery order (never empty).
    pub violations: Vec<Violation>,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "after pass `{}`: {}", self.pass, self.violations[0])?;
        if self.violations.len() > 1 {
            write!(f, " (+{} more)", self.violations.len() - 1)?;
        }
        Ok(())
    }
}

/// A pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// MiniC frontend error.
    Compile(CompileError),
    /// Emulation error (in profiling or simulation).
    Emu(EmuError),
    /// Timing-simulation watchdog error (cycle budget).
    Sim(SimError),
    /// A per-pass semantic checkpoint found a miscompile.
    Lint(LintError),
    /// List scheduling failed (malformed dependence structure).
    Sched(SchedError),
    /// A transformation refused to proceed because it would exceed a
    /// configured growth budget (see [`UnrollConfig::max_growth_insts`]
    /// and friends). Pathological inputs degrade to this typed error —
    /// never a hang or OOM — and the [`Pipeline::finish_degraded`] ladder
    /// can retry with the offending pass disabled.
    Budget {
        /// The pass whose budget tripped.
        pass: Stage,
        /// What was being bounded (e.g. `grown-insts`).
        metric: &'static str,
        /// The value the metric reached.
        value: u64,
        /// The configured limit it exceeded.
        limit: u64,
    },
    /// An end-to-end soak oracle failed: the decoded and reference
    /// emulators disagreed on one module, a model's architectural
    /// side-effect stream diverged from the baseline's, or the timing
    /// simulator's statistics broke a sanity invariant. Like
    /// [`PipelineError::Diverged`], this is a miscompile (or simulator
    /// bug), not an input error.
    Oracle {
        /// Workload the oracle was checking.
        workload: String,
        /// The model under test when the oracle fired.
        model: Model,
        /// Which oracle failed (stable; part of the failure signature).
        check: &'static str,
        /// Human-readable mismatch detail (excluded from the signature).
        detail: String,
    },
    /// A model's simulated program result disagreed with the baseline's
    /// for the same workload — a miscompile in that model's pipeline, not
    /// an input error. Reported as a typed failure so drivers can contain
    /// it per cell instead of panicking the whole run.
    Diverged {
        /// Workload whose results disagree.
        workload: String,
        /// The model that produced the wrong answer.
        model: Model,
        /// The diverging model's program result.
        got: i64,
        /// The baseline's program result.
        want: i64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Emu(e) => write!(f, "execution error: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation error: {e}"),
            PipelineError::Lint(e) => write!(f, "lint error: {e}"),
            PipelineError::Sched(e) => write!(f, "schedule error: {e}"),
            PipelineError::Budget {
                pass,
                metric,
                value,
                limit,
            } => write!(
                f,
                "budget exceeded in pass `{pass}`: {metric} = {value} > limit {limit}"
            ),
            PipelineError::Oracle {
                workload,
                model,
                check,
                detail,
            } => write!(
                f,
                "oracle `{check}` failed: {workload} under {model}: {detail}"
            ),
            PipelineError::Diverged {
                workload,
                model,
                got,
                want,
            } => write!(
                f,
                "result divergence: {workload}: {model} returned {got}, baseline {want}"
            ),
        }
    }
}

impl Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<EmuError> for PipelineError {
    fn from(e: EmuError) -> Self {
        PipelineError::Emu(e)
    }
}

impl From<SchedError> for PipelineError {
    fn from(e: SchedError) -> Self {
        PipelineError::Sched(e)
    }
}

impl From<GrowthBudget> for PipelineError {
    fn from(b: GrowthBudget) -> Self {
        let pass = match b.pass {
            "unroll" => Stage::Unroll,
            "promote" => Stage::Promote,
            // "ifconvert" and anything a future pass reports.
            _ => Stage::IfConvert,
        };
        PipelineError::Budget {
            pass,
            metric: b.metric,
            value: b.value,
            limit: b.limit,
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        match e {
            // Plain emulation failures keep their historical shape so
            // callers matching on `PipelineError::Emu` still work.
            SimError::Emu(e) => PipelineError::Emu(e),
            // Watchdogs (cycle budget, wall-clock deadline) stay typed as
            // simulation failures.
            e => PipelineError::Sim(e),
        }
    }
}

/// All pass configuration for the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// Trace-selection tunables for the baseline model.
    pub superblock: SuperblockConfig,
    /// Block-selection tunables for hyperblock formation.
    pub hyperblock: HyperblockConfig,
    /// Full-to-partial conversion options (conditional-move model).
    pub partial: PartialConfig,
    /// Run predicate promotion on hyperblocks.
    pub promote: bool,
    /// Run the classic optimizer before and after formation.
    pub classic_opt: bool,
    /// Inline small functions before profiling (IMPACT-style).
    pub inline: bool,
    /// Loop unrolling applied to formed regions.
    pub unroll: UnrollConfig,
    /// Budget on predicate-promotion fixpoint rounds per function;
    /// exceeding it fails with [`PipelineError::Budget`].
    pub promote_rounds: usize,
    /// Instruction budget for the profiling run (the emulator's fuel);
    /// a non-terminating input fails with `OutOfFuel` instead of hanging.
    pub profile_fuel: u64,
    /// Honor fault-injection markers in workload sources (see
    /// [`crate::faults`]). Off by default: production compiles never
    /// scan for markers semantically — this exists so the fault-injection
    /// fixtures and the `figures --inject-faults` chaos path can exercise
    /// panic containment end to end.
    pub fault_injection: bool,
    /// Run the semantic checkpoint (structural verify + the checkers in
    /// [`hyperpred_ir::analysis`]) after every pass. Defaults to on in
    /// debug builds — so the test suite always exercises it — and off in
    /// release, where `hyperpredc lint` and CI turn it on explicitly.
    pub checks: bool,
    /// Chaos hook: deliberately corrupt the module right after the named
    /// stage runs, so tests and CI can assert the *next* checkpoint
    /// catches the miscompile and blames that stage.
    pub sabotage: Option<Stage>,
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline {
            superblock: SuperblockConfig::default(),
            hyperblock: HyperblockConfig::default(),
            partial: PartialConfig::default(),
            promote: true,
            classic_opt: true,
            inline: true,
            unroll: UnrollConfig::default(),
            promote_rounds: 64,
            profile_fuel: hyperpred_emu::DEFAULT_FUEL,
            fault_injection: false,
            checks: cfg!(debug_assertions),
            sabotage: None,
        }
    }
}

/// Runs the per-pass semantic checkpoint and threads the speculation
/// snapshot from one checkpoint to the next.
struct Checkpointer<'a> {
    pipe: &'a Pipeline,
    model: Model,
    /// True once `to_partial_module` has run (cmov model).
    converted: bool,
    spec: Option<Snapshot>,
    /// Per-function predicate relation databases built by the
    /// [`Stage::Relations`] analysis stage (the *held* artifact the
    /// sabotage hook corrupts). Dropped at the next transforming
    /// checkpoint: any pass that reshapes blocks makes it stale.
    relations: Option<Vec<RelationDb>>,
}

impl Checkpointer<'_> {
    fn new(pipe: &Pipeline, model: Model) -> Checkpointer<'_> {
        Checkpointer {
            pipe,
            model,
            converted: false,
            spec: None,
            relations: None,
        }
    }

    /// The predication discipline the module must conform to right now.
    fn class(&self) -> ModelClass {
        match self.model {
            Model::Superblock => ModelClass::NoPred,
            Model::CondMove if self.converted => ModelClass::PartialPred,
            Model::CondMove | Model::FullPred => ModelClass::FullPred,
        }
    }

    /// The [`Stage::Relations`] analysis stage: builds the per-function
    /// relation database over the current module, holds it, and
    /// validates it with the relation-soundness checker family. The
    /// `--sabotage relations` chaos hook corrupts the *held database*
    /// rather than the IR — the checker must catch the graph itself
    /// lying, independent of the module being well formed.
    fn check_relations(&mut self, module: &Module) -> Result<(), PipelineError> {
        if !self.pipe.checks && self.pipe.sabotage != Some(Stage::Relations) {
            return Ok(());
        }
        self.relations = Some(
            module
                .funcs
                .iter()
                .map(|f| RelationDb::build(f, &Cfg::new(f)))
                .collect(),
        );
        let dbs = self.relations.as_mut().expect("just stored");
        if self.pipe.sabotage == Some(Stage::Relations) {
            'corrupt: for db in dbs.iter_mut() {
                for state in db.entry.iter_mut().flatten() {
                    if state.sabotage() {
                        break 'corrupt;
                    }
                }
            }
        }
        if self.pipe.checks {
            let mut violations = Vec::new();
            for (f, db) in module.funcs.iter().zip(dbs.iter()) {
                analysis::check_relation_soundness(f, db, &mut violations);
            }
            if !violations.is_empty() {
                return Err(PipelineError::Lint(LintError {
                    pass: Stage::Relations,
                    violations,
                }));
            }
        }
        Ok(())
    }

    /// Checkpoint after `stage`; fails with that stage named if the module
    /// no longer verifies or lints clean.
    fn check(&mut self, module: &mut Module, stage: Stage) -> Result<(), PipelineError> {
        // Any transforming pass reshapes blocks and predicates; the
        // relation databases held from the analysis stage are stale.
        self.relations = None;
        if self.pipe.sabotage == Some(stage) {
            sabotage_module(module);
        }
        if !self.pipe.checks {
            return Ok(());
        }
        // Structural soundness gates the semantic checkers: they assume
        // in-range registers and laid-out branch targets.
        let violations = match module.verify() {
            Err(e) => vec![Violation::from(e)],
            Ok(()) => analysis::check_module(module, self.class(), self.spec.as_ref()),
        };
        if !violations.is_empty() {
            return Err(PipelineError::Lint(LintError {
                pass: stage,
                violations,
            }));
        }
        self.spec = Some(Snapshot::of(module));
        Ok(())
    }
}

/// Deliberately miscompiles the module for the `sabotage` chaos hook:
/// guards the first instruction of `main`'s entry block with a fresh,
/// never-defined predicate register — a use-before-def (and, outside the
/// full-predication model, a conformance break) the next checkpoint must
/// catch.
fn sabotage_module(module: &mut Module) {
    let Some(f) = module
        .funcs
        .iter_mut()
        .find(|f| !f.block(f.entry()).insts.is_empty())
    else {
        return;
    };
    let p = f.fresh_pred();
    let entry = f.entry();
    f.block_mut(entry).insts[0].guard = Some(p);
}

/// The model- and machine-independent first half of a compile: frontend,
/// inlining, pre-formation optimization, and the profiling training run.
///
/// Everything up to region formation depends only on the source and the
/// training arguments, so this output is byte-identical across all
/// (model, machine) combinations of one workload. Drivers that compile a
/// workload many times — the matrix engine compiles each one up to ten
/// times across the figures — compute this once with [`Pipeline::front`]
/// and fan it out through [`Pipeline::finish`].
#[derive(Debug, Clone)]
pub struct FrontOutput {
    /// The optimized pre-formation module (unpredicated, basic blocks).
    pub module: Module,
    /// The training-run profile that drives region formation.
    pub profile: Profiler,
}

impl Pipeline {
    /// Compiles MiniC `source` for `model` on `machine`: frontend, classic
    /// optimization, profiling (one training run on `args`), region
    /// formation, model-specific conversion, and scheduling. The returned
    /// module is verified and ready for [`hyperpred_sim::simulate`].
    ///
    /// Equivalent to [`Pipeline::front`] followed by [`Pipeline::finish`].
    ///
    /// # Errors
    /// Fails on frontend errors or if the profiling run faults.
    pub fn compile(
        &self,
        source: &str,
        args: &[i64],
        model: Model,
        machine: &MachineConfig,
    ) -> Result<Module, PipelineError> {
        let front = self.front(source, args)?;
        self.finish(&front, model, machine)
    }

    /// Runs the model-independent pipeline half: frontend, inlining,
    /// pre-formation optimization, and the profiling run on `args`.
    ///
    /// Checkpoints here use [`ModelClass::NoPred`]: before region
    /// formation the IR is unpredicated under every model, so a predicate
    /// appearing this early is a miscompile regardless of what the
    /// back half will build.
    ///
    /// # Errors
    /// Fails on frontend errors or if the profiling run faults.
    pub fn front(&self, source: &str, args: &[i64]) -> Result<FrontOutput, PipelineError> {
        if self.fault_injection && source.contains(crate::faults::PANIC_MARKER) {
            panic!(
                "injected compile-stage panic ({} fixture)",
                crate::faults::PANIC_MARKER
            );
        }
        if self.fault_injection
            && source.contains(crate::faults::FLAKY_MARKER)
            && crate::faults::flaky_should_panic()
        {
            panic!(
                "injected flaky compile-stage panic ({} fixture)",
                crate::faults::FLAKY_MARKER
            );
        }
        let mut ck = Checkpointer::new(self, Model::Superblock);
        let mut module = hyperpred_lang::compile(source)?;
        ck.check(&mut module, Stage::Frontend)?;
        if self.inline {
            hyperpred_opt::inline::run_module(
                &mut module,
                &hyperpred_opt::inline::InlineConfig::default(),
            );
            ck.check(&mut module, Stage::Inline)?;
        }
        if self.classic_opt {
            hyperpred_opt::optimize_module(&mut module);
            ck.check(&mut module, Stage::OptPre)?;
        }
        // Profile (the paper profiles the measured run itself).
        let mut prof = Profiler::new();
        let mut emu = Emulator::new(&module).with_fuel(self.profile_fuel);
        emu.run("main", &entry_args(args), &mut prof)?;
        Ok(FrontOutput {
            module,
            profile: prof,
        })
    }

    /// Runs the model- and machine-specific pipeline half on a
    /// [`FrontOutput`]: region formation, model conversion, post
    /// optimization, and scheduling. `front` is not consumed — the same
    /// front half fans out to every (model, machine) combination.
    ///
    /// # Errors
    /// Fails if a semantic checkpoint rejects a pass's output.
    pub fn finish(
        &self,
        front: &FrontOutput,
        model: Model,
        machine: &MachineConfig,
    ) -> Result<Module, PipelineError> {
        let mut module = front.module.clone();
        let prof = &front.profile;
        let mut ck = Checkpointer::new(self, model);
        if self.checks {
            // Re-seed the speculation snapshot the front half's last
            // checkpoint would have handed over.
            ck.spec = Some(Snapshot::of(&module));
        }

        // Region formation runs one stage at a time across all functions
        // (functions are independent), so each checkpoint sees the whole
        // module as one named pass left it.
        let each =
            |module: &mut Module,
             apply: &dyn Fn(&mut hyperpred_ir::Function, FuncId) -> Result<(), PipelineError>|
             -> Result<(), PipelineError> {
                for (i, f) in module.funcs.iter_mut().enumerate() {
                    apply(f, FuncId(i as u32))?;
                }
                Ok(())
            };
        match model {
            Model::Superblock => {
                each(&mut module, &|f, fid| {
                    form_superblocks(f, fid, prof, &self.superblock);
                    Ok(())
                })?;
                ck.check(&mut module, Stage::Superblock)?;
            }
            Model::CondMove | Model::FullPred => {
                each(&mut module, &|f, fid| {
                    form_hyperblocks(f, fid, prof, &self.hyperblock)?;
                    Ok(())
                })?;
                ck.check(&mut module, Stage::IfConvert)?;
                ck.check_relations(&module)?;
                if self.promote {
                    each(&mut module, &|f, _| {
                        promote_bounded(f, self.promote_rounds)?;
                        Ok(())
                    })?;
                    ck.check(&mut module, Stage::Promote)?;
                }
                // Code the if-converter left alone (call-heavy regions)
                // still gets superblock treatment, as in IMPACT.
                each(&mut module, &|f, fid| {
                    form_superblocks(f, fid, prof, &self.superblock);
                    Ok(())
                })?;
                ck.check(&mut module, Stage::Superblock)?;
            }
        }
        each(&mut module, &|f, fid| {
            unroll_self_loops(f, fid, prof, &self.unroll)?;
            Ok(())
        })?;
        ck.check(&mut module, Stage::Unroll)?;
        if model == Model::CondMove {
            to_partial_module(&mut module, &self.partial);
            ck.converted = true;
            ck.check(&mut module, Stage::PartialConvert)?;
        }
        if self.classic_opt {
            hyperpred_opt::optimize_module(&mut module);
            ck.check(&mut module, Stage::OptPost)?;
        }
        schedule_module(&mut module, machine)?;
        ck.check(&mut module, Stage::Schedule)?;
        if self.fault_injection
            && model == Model::FullPred
            && module
                .funcs
                .iter()
                .any(|f| f.name == crate::faults::DIVERGE_MARKER)
        {
            crate::faults::skew_main_result(&mut module);
        }
        if !self.checks {
            // Cheap structural backstop for debug builds running with
            // checkpoints disabled (evaluated once, reported once).
            let verified = module.verify();
            debug_assert!(verified.is_ok(), "{:?}", verified.err());
        }
        Ok(module)
    }

    /// Like [`Pipeline::finish`], but with a *degradation ladder*: when a
    /// pass trips its growth budget ([`PipelineError::Budget`]), the
    /// compile retries with that transformation disabled instead of
    /// failing the cell outright. Fallback order mirrors optimization
    /// aggressiveness — unrolling drops to factor 1, promotion turns off,
    /// hyperblock formation falls back to superblock-only (still valid
    /// under every model's conformance class). Only the budget that
    /// actually tripped is disabled per step, so a well-behaved program
    /// never loses a transformation it could afford. Non-budget errors
    /// propagate unchanged; a budget that trips again after its pass was
    /// already disabled is returned as the permanent failure.
    ///
    /// # Errors
    /// Same as [`Pipeline::finish`] for non-budget failures, or the final
    /// [`PipelineError::Budget`] if the ladder is exhausted.
    pub fn finish_degraded(
        &self,
        front: &FrontOutput,
        model: Model,
        machine: &MachineConfig,
    ) -> Result<(Module, Degradation), PipelineError> {
        let mut pipe = *self;
        let mut disabled: Vec<Stage> = Vec::new();
        loop {
            match pipe.finish(front, model, machine) {
                Ok(module) => return Ok((module, Degradation { disabled })),
                Err(PipelineError::Budget {
                    pass,
                    metric,
                    value,
                    limit,
                }) if !disabled.contains(&pass) => {
                    match pass {
                        Stage::Unroll => pipe.unroll.factor = 1,
                        Stage::Promote => pipe.promote = false,
                        Stage::IfConvert => {
                            // Rejecting every candidate region disables
                            // formation; the finish path then applies its
                            // usual superblock fallback to the whole
                            // function.
                            pipe.hyperblock.max_blocks = 0;
                        }
                        // A budget blamed on a stage with no knob to turn
                        // off is permanent.
                        other => {
                            return Err(PipelineError::Budget {
                                pass: other,
                                metric,
                                value,
                                limit,
                            })
                        }
                    }
                    disabled.push(pass);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`Pipeline::compile`] with the [`Pipeline::finish_degraded`]
    /// degradation ladder applied to the back half.
    ///
    /// # Errors
    /// See [`Pipeline::finish_degraded`].
    pub fn compile_degraded(
        &self,
        source: &str,
        args: &[i64],
        model: Model,
        machine: &MachineConfig,
    ) -> Result<(Module, Degradation), PipelineError> {
        let front = self.front(source, args)?;
        self.finish_degraded(&front, model, machine)
    }
}

/// What the degradation ladder had to give up to finish a compile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Passes disabled by the ladder, in the order their budgets tripped.
    /// Empty for a clean (non-degraded) compile.
    pub disabled: Vec<Stage>,
}

impl Degradation {
    /// True when at least one transformation was disabled.
    pub fn is_degraded(&self) -> bool {
        !self.disabled.is_empty()
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disabled.is_empty() {
            return f.write_str("none");
        }
        for (i, s) in self.disabled.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Compiles `source` under `model` with default pipeline settings.
///
/// # Errors
/// See [`Pipeline::compile`].
pub fn compile_model(
    source: &str,
    args: &[i64],
    model: Model,
    machine: &MachineConfig,
) -> Result<Module, PipelineError> {
    Pipeline::default().compile(source, args, model, machine)
}

/// Compiles and simulates `source` in one call, returning timing
/// statistics.
///
/// # Errors
/// Fails on frontend or emulation errors.
pub fn evaluate(
    source: &str,
    args: &[i64],
    model: Model,
    machine: MachineConfig,
    sim: SimConfig,
    pipe: &Pipeline,
) -> Result<SimStats, PipelineError> {
    let module = pipe.compile(source, args, model, &machine)?;
    let stats = simulate(&module, "main", &entry_args(args), machine, sim)?;
    Ok(stats)
}

/// Speedup of `faster` over `baseline` (the paper's metric: baseline
/// cycles / model cycles).
pub fn speedup(baseline: &SimStats, faster: &SimStats) -> f64 {
    if faster.cycles == 0 {
        0.0
    } else {
        baseline.cycles as f64 / faster.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_sim::SimConfig;

    const SRC: &str = "int main() {
        int i; int s; s = 0;
        for (i = 0; i < 300; i += 1) {
            if (i % 2 == 0) s += 3;
            else if (i % 3 == 0) s += 7;
            else s -= 1;
        }
        return s;
    }";

    #[test]
    fn all_models_agree_on_results() {
        let pipe = Pipeline::default();
        let machine = MachineConfig::new(8, 1);
        let sim = SimConfig::default();
        let mut rets = Vec::new();
        for model in Model::ALL {
            let s = evaluate(SRC, &[], model, machine, sim, &pipe).unwrap();
            rets.push(s.ret);
        }
        assert_eq!(rets[0], rets[1]);
        assert_eq!(rets[1], rets[2]);
    }

    #[test]
    fn predication_beats_baseline_on_wide_issue() {
        let pipe = Pipeline::default();
        let sim = SimConfig::default();
        let base = evaluate(
            SRC,
            &[],
            Model::Superblock,
            MachineConfig::one_issue(),
            sim,
            &pipe,
        )
        .unwrap();
        let sup = evaluate(
            SRC,
            &[],
            Model::Superblock,
            MachineConfig::new(8, 1),
            sim,
            &pipe,
        )
        .unwrap();
        let full = evaluate(
            SRC,
            &[],
            Model::FullPred,
            MachineConfig::new(8, 1),
            sim,
            &pipe,
        )
        .unwrap();
        assert!(
            speedup(&base, &sup) > 1.0,
            "8-issue superblock beats scalar"
        );
        assert!(
            speedup(&base, &full) > speedup(&base, &sup),
            "full predication beats superblock: {} !> {}",
            speedup(&base, &full),
            speedup(&base, &sup)
        );
    }

    #[test]
    fn full_pred_removes_branches() {
        let pipe = Pipeline::default();
        let sim = SimConfig::default();
        let machine = MachineConfig::new(8, 1);
        let sup = evaluate(SRC, &[], Model::Superblock, machine, sim, &pipe).unwrap();
        let full = evaluate(SRC, &[], Model::FullPred, machine, sim, &pipe).unwrap();
        let cmov = evaluate(SRC, &[], Model::CondMove, machine, sim, &pipe).unwrap();
        assert!(
            full.branches < sup.branches,
            "{} !< {}",
            full.branches,
            sup.branches
        );
        assert!(cmov.branches < sup.branches);
    }

    #[test]
    fn cmov_model_executes_more_instructions_than_full() {
        let pipe = Pipeline::default();
        let sim = SimConfig::default();
        let machine = MachineConfig::new(8, 1);
        let full = evaluate(SRC, &[], Model::FullPred, machine, sim, &pipe).unwrap();
        let cmov = evaluate(SRC, &[], Model::CondMove, machine, sim, &pipe).unwrap();
        assert!(cmov.insts > full.insts);
    }
}
