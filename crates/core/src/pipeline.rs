//! The per-model compilation pipeline and simulation driver.

use hyperpred_emu::{EmuError, Emulator, Profiler};
use hyperpred_hyperblock::{
    form_hyperblocks, form_superblocks, promote, unroll_self_loops, HyperblockConfig,
    SuperblockConfig, UnrollConfig,
};
use hyperpred_ir::{FuncId, Module};
use hyperpred_lang::lower::entry_args;
use hyperpred_lang::CompileError;
use hyperpred_partial::{to_partial_module, PartialConfig};
use hyperpred_sched::{schedule_module, MachineConfig};
use hyperpred_sim::{simulate, SimConfig, SimError, SimStats};
use std::error::Error;
use std::fmt;

/// The three architecture/compiler models the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// No predication: superblock formation + speculation (baseline).
    Superblock,
    /// Partial predication: hyperblocks converted to conditional moves.
    CondMove,
    /// Full predication: hyperblocks with guarded instructions.
    FullPred,
}

impl Model {
    /// The three models in the paper's presentation order.
    pub const ALL: [Model; 3] = [Model::Superblock, Model::CondMove, Model::FullPred];
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Model::Superblock => "Superblock",
            Model::CondMove => "Cond. Move",
            Model::FullPred => "Full Pred.",
        };
        f.write_str(s)
    }
}

/// A pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// MiniC frontend error.
    Compile(CompileError),
    /// Emulation error (in profiling or simulation).
    Emu(EmuError),
    /// Timing-simulation watchdog error (cycle budget).
    Sim(SimError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Emu(e) => write!(f, "execution error: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<EmuError> for PipelineError {
    fn from(e: EmuError) -> Self {
        PipelineError::Emu(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        match e {
            // Plain emulation failures keep their historical shape so
            // callers matching on `PipelineError::Emu` still work.
            SimError::Emu(e) => PipelineError::Emu(e),
            e @ SimError::CycleLimit { .. } => PipelineError::Sim(e),
        }
    }
}

/// All pass configuration for the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// Trace-selection tunables for the baseline model.
    pub superblock: SuperblockConfig,
    /// Block-selection tunables for hyperblock formation.
    pub hyperblock: HyperblockConfig,
    /// Full-to-partial conversion options (conditional-move model).
    pub partial: PartialConfig,
    /// Run predicate promotion on hyperblocks.
    pub promote: bool,
    /// Run the classic optimizer before and after formation.
    pub classic_opt: bool,
    /// Inline small functions before profiling (IMPACT-style).
    pub inline: bool,
    /// Loop unrolling applied to formed regions.
    pub unroll: UnrollConfig,
    /// Instruction budget for the profiling run (the emulator's fuel);
    /// a non-terminating input fails with `OutOfFuel` instead of hanging.
    pub profile_fuel: u64,
    /// Honor fault-injection markers in workload sources (see
    /// [`crate::faults`]). Off by default: production compiles never
    /// scan for markers semantically — this exists so the fault-injection
    /// fixtures and the `figures --inject-faults` chaos path can exercise
    /// panic containment end to end.
    pub fault_injection: bool,
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline {
            superblock: SuperblockConfig::default(),
            hyperblock: HyperblockConfig::default(),
            partial: PartialConfig::default(),
            promote: true,
            classic_opt: true,
            inline: true,
            unroll: UnrollConfig::default(),
            profile_fuel: hyperpred_emu::DEFAULT_FUEL,
            fault_injection: false,
        }
    }
}

impl Pipeline {
    /// Compiles MiniC `source` for `model` on `machine`: frontend, classic
    /// optimization, profiling (one training run on `args`), region
    /// formation, model-specific conversion, and scheduling. The returned
    /// module is verified and ready for [`hyperpred_sim::simulate`].
    ///
    /// # Errors
    /// Fails on frontend errors or if the profiling run faults.
    pub fn compile(
        &self,
        source: &str,
        args: &[i64],
        model: Model,
        machine: &MachineConfig,
    ) -> Result<Module, PipelineError> {
        if self.fault_injection && source.contains(crate::faults::PANIC_MARKER) {
            panic!(
                "injected compile-stage panic ({} fixture)",
                crate::faults::PANIC_MARKER
            );
        }
        let mut module = hyperpred_lang::compile(source)?;
        if self.inline {
            hyperpred_opt::inline::run_module(
                &mut module,
                &hyperpred_opt::inline::InlineConfig::default(),
            );
        }
        if self.classic_opt {
            hyperpred_opt::optimize_module(&mut module);
        }
        // Profile (the paper profiles the measured run itself).
        let mut prof = Profiler::new();
        let mut emu = Emulator::new(&module).with_fuel(self.profile_fuel);
        emu.run("main", &entry_args(args), &mut prof)?;

        for i in 0..module.funcs.len() {
            let fid = FuncId(i as u32);
            let mut f = module.funcs[i].clone();
            match model {
                Model::Superblock => {
                    form_superblocks(&mut f, fid, &prof, &self.superblock);
                }
                Model::CondMove | Model::FullPred => {
                    form_hyperblocks(&mut f, fid, &prof, &self.hyperblock);
                    if self.promote {
                        promote(&mut f);
                    }
                    // Code the if-converter left alone (call-heavy regions)
                    // still gets superblock treatment, as in IMPACT.
                    form_superblocks(&mut f, fid, &prof, &self.superblock);
                }
            }
            unroll_self_loops(&mut f, fid, &prof, &self.unroll);
            module.funcs[i] = f;
        }
        if model == Model::CondMove {
            to_partial_module(&mut module, &self.partial);
        }
        if self.classic_opt {
            hyperpred_opt::optimize_module(&mut module);
        }
        schedule_module(&mut module, machine);
        debug_assert!(module.verify().is_ok(), "{:?}", module.verify().err());
        Ok(module)
    }
}

/// Compiles `source` under `model` with default pipeline settings.
///
/// # Errors
/// See [`Pipeline::compile`].
pub fn compile_model(
    source: &str,
    args: &[i64],
    model: Model,
    machine: &MachineConfig,
) -> Result<Module, PipelineError> {
    Pipeline::default().compile(source, args, model, machine)
}

/// Compiles and simulates `source` in one call, returning timing
/// statistics.
///
/// # Errors
/// Fails on frontend or emulation errors.
pub fn evaluate(
    source: &str,
    args: &[i64],
    model: Model,
    machine: MachineConfig,
    sim: SimConfig,
    pipe: &Pipeline,
) -> Result<SimStats, PipelineError> {
    let module = pipe.compile(source, args, model, &machine)?;
    let stats = simulate(&module, "main", &entry_args(args), machine, sim)?;
    Ok(stats)
}

/// Speedup of `faster` over `baseline` (the paper's metric: baseline
/// cycles / model cycles).
pub fn speedup(baseline: &SimStats, faster: &SimStats) -> f64 {
    if faster.cycles == 0 {
        0.0
    } else {
        baseline.cycles as f64 / faster.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperpred_sim::SimConfig;

    const SRC: &str = "int main() {
        int i; int s; s = 0;
        for (i = 0; i < 300; i += 1) {
            if (i % 2 == 0) s += 3;
            else if (i % 3 == 0) s += 7;
            else s -= 1;
        }
        return s;
    }";

    #[test]
    fn all_models_agree_on_results() {
        let pipe = Pipeline::default();
        let machine = MachineConfig::new(8, 1);
        let sim = SimConfig::default();
        let mut rets = Vec::new();
        for model in Model::ALL {
            let s = evaluate(SRC, &[], model, machine, sim, &pipe).unwrap();
            rets.push(s.ret);
        }
        assert_eq!(rets[0], rets[1]);
        assert_eq!(rets[1], rets[2]);
    }

    #[test]
    fn predication_beats_baseline_on_wide_issue() {
        let pipe = Pipeline::default();
        let sim = SimConfig::default();
        let base = evaluate(
            SRC,
            &[],
            Model::Superblock,
            MachineConfig::one_issue(),
            sim,
            &pipe,
        )
        .unwrap();
        let sup = evaluate(
            SRC,
            &[],
            Model::Superblock,
            MachineConfig::new(8, 1),
            sim,
            &pipe,
        )
        .unwrap();
        let full = evaluate(
            SRC,
            &[],
            Model::FullPred,
            MachineConfig::new(8, 1),
            sim,
            &pipe,
        )
        .unwrap();
        assert!(
            speedup(&base, &sup) > 1.0,
            "8-issue superblock beats scalar"
        );
        assert!(
            speedup(&base, &full) > speedup(&base, &sup),
            "full predication beats superblock: {} !> {}",
            speedup(&base, &full),
            speedup(&base, &sup)
        );
    }

    #[test]
    fn full_pred_removes_branches() {
        let pipe = Pipeline::default();
        let sim = SimConfig::default();
        let machine = MachineConfig::new(8, 1);
        let sup = evaluate(SRC, &[], Model::Superblock, machine, sim, &pipe).unwrap();
        let full = evaluate(SRC, &[], Model::FullPred, machine, sim, &pipe).unwrap();
        let cmov = evaluate(SRC, &[], Model::CondMove, machine, sim, &pipe).unwrap();
        assert!(
            full.branches < sup.branches,
            "{} !< {}",
            full.branches,
            sup.branches
        );
        assert!(cmov.branches < sup.branches);
    }

    #[test]
    fn cmov_model_executes_more_instructions_than_full() {
        let pipe = Pipeline::default();
        let sim = SimConfig::default();
        let machine = MachineConfig::new(8, 1);
        let full = evaluate(SRC, &[], Model::FullPred, machine, sim, &pipe).unwrap();
        let cmov = evaluate(SRC, &[], Model::CondMove, machine, sim, &pipe).unwrap();
        assert!(cmov.insts > full.insts);
    }
}
