//! Wire protocol and client for the `hyperpredd` compile-and-simulate
//! service: hand-rolled JSON (like the journal — no serde in the tree), a
//! minimal HTTP/1.1 reader/writer shared by the daemon and its clients,
//! and the `bench-load` request generator.
//!
//! # Protocol
//!
//! Everything rides HTTP/1.1 over a local TCP socket, one request per
//! connection (`Connection: close`). Endpoints:
//!
//! * `POST /v1/cell` — body is one cell-request object; response is one
//!   cell-response object.
//! * `POST /v1/cells` — body is `{"cells":[...]}`; response is
//!   `{"results":[...]}` in request order.
//! * `GET /v1/stats` — daemon counters (cells stored, hits, computed,
//!   failed, rejected, conflicts, queue depth).
//! * `GET /healthz` — liveness probe, body `ok`.
//!
//! A cell request (`source` is deliberately serialized *last* — every
//! other key is matched before the one free-text field that could spoof
//! key patterns):
//!
//! ```text
//! {"name":"gen-branchy-1","model":"fullpred","issue":8,"branches":1,
//!  "memory":"perfect","max_cycles":10000000000,"args":[1,-2],
//!  "source":"int main() { ... }"}
//! ```
//!
//! A cell response is one of five statuses. `hit` and `computed` carry
//! the full flattened [`SimStats`] plus the degradation flag; `failed`
//! carries the stage, stable triage signature, and rendered error;
//! `rejected` is the typed backpressure answer (queue full — retry
//! later); `conflict` means the store refuses the key (two different
//! results were recorded under the same fingerprint — see
//! [`JournalConflict`](crate::journal::JournalConflict)).
//!
//! ```text
//! {"status":"hit","fingerprint":"92ab...","degraded":false,"cycles":123,...,"ret":42}
//! {"status":"failed","fingerprint":"92ab...","stage":"compile","signature":"compile: ...","error":"..."}
//! {"status":"rejected","fingerprint":"","error":"queue full (depth 256); retry later"}
//! ```

use crate::journal::escape;
use crate::matrix::CellRequest;
use crate::pipeline::Model;
use hyperpred_sim::{CacheConfig, MemoryModel, SimStats, DEFAULT_CYCLE_LIMIT};
use hyperpred_workloads::gen::{self, Profile};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Largest request/response body either side will read. Bounded so a
/// damaged or hostile peer degrades into a typed `413`, never unbounded
/// memory.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

// ---------------------------------------------------------------------------
// JSON primitives (backslash-aware key search; values use journal escaping).
// ---------------------------------------------------------------------------

/// Finds the byte offset just past `"key":`, skipping candidate matches
/// preceded by a backslash (i.e. key text embedded inside an escaped
/// string value).
fn find_key(json: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let mut from = 0;
    while let Some(rel) = json[from..].find(&pat) {
        let at = from + rel;
        if at == 0 || json.as_bytes()[at - 1] != b'\\' {
            return Some(at + pat.len());
        }
        from = at + 1;
    }
    None
}

/// Extracts a string field (journal-escaped) from one JSON object.
pub fn get_str(json: &str, key: &str) -> Option<String> {
    let at = find_key(json, key)?;
    let rest = json[at..].trim_start().strip_prefix('"')?;
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(crate::journal::unescape(&rest[..end?]))
}

fn get_number<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let at = find_key(json, key)?;
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(&rest[..end])
}

/// Extracts an unsigned integer field.
pub fn get_u64(json: &str, key: &str) -> Option<u64> {
    get_number(json, key)?.parse().ok()
}

/// Extracts a signed integer field.
pub fn get_i64(json: &str, key: &str) -> Option<i64> {
    get_number(json, key)?.parse().ok()
}

/// Extracts a `true`/`false` field.
pub fn get_bool(json: &str, key: &str) -> Option<bool> {
    let at = find_key(json, key)?;
    let rest = json[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts a flat `[1,-2,...]` integer array field (`[]` is `Some(vec![])`).
pub fn get_i64_array(json: &str, key: &str) -> Option<Vec<i64>> {
    let at = find_key(json, key)?;
    let rest = json[at..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

/// Splits the top-level objects out of a JSON array body, tracking brace
/// depth and string/escape state so braces inside source text never
/// confuse the split. `body` is everything between the array's `[` and
/// `]` (exclusive is fine; surrounding whitespace tolerated).
fn split_objects(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        out.push(&body[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Locates the body of the array under `key` (between its brackets).
fn array_body<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let at = find_key(json, key)?;
    let rest = &json[at..];
    let open = rest.find('[')?;
    // Walk to the matching close bracket, honoring strings.
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Cell request serialization.
// ---------------------------------------------------------------------------

/// The wire slug of a memory model (`CacheConfig` geometry is always the
/// default one; the experiment layer never uses another).
fn memory_slug(m: &MemoryModel) -> &'static str {
    match m {
        MemoryModel::Perfect => "perfect",
        MemoryModel::Caches(_) => "caches",
    }
}

fn parse_memory(slug: &str) -> Option<MemoryModel> {
    match slug {
        "perfect" => Some(MemoryModel::Perfect),
        "caches" => Some(MemoryModel::Caches(CacheConfig::default())),
        _ => None,
    }
}

fn parse_model(slug: &str) -> Option<Model> {
    match slug {
        "superblock" => Some(Model::Superblock),
        "condmove" => Some(Model::CondMove),
        "fullpred" => Some(Model::FullPred),
        _ => None,
    }
}

/// Serializes one request. `source` goes last (see module docs).
pub fn request_to_json(req: &CellRequest) -> String {
    let args: Vec<String> = req.args.iter().map(i64::to_string).collect();
    format!(
        "{{\"name\":\"{}\",\"model\":\"{}\",\"issue\":{},\"branches\":{},\
         \"memory\":\"{}\",\"max_cycles\":{},\"args\":[{}],\"source\":\"{}\"}}",
        escape(&req.name),
        crate::journal::model_slug(Some(req.model)),
        req.issue,
        req.branches,
        memory_slug(&req.memory),
        req.max_cycles,
        args.join(","),
        escape(&req.source),
    )
}

/// Parses one request object; the error names the first missing or
/// malformed field (it becomes the daemon's `400` body).
pub fn parse_request(json: &str) -> Result<CellRequest, String> {
    let model_slug = get_str(json, "model").ok_or("missing field `model`")?;
    let model = parse_model(&model_slug).ok_or_else(|| format!("unknown model `{model_slug}`"))?;
    let memory_slug = get_str(json, "memory").unwrap_or_else(|| "perfect".to_string());
    let memory =
        parse_memory(&memory_slug).ok_or_else(|| format!("unknown memory `{memory_slug}`"))?;
    Ok(CellRequest {
        name: get_str(json, "name").unwrap_or_default(),
        source: get_str(json, "source").ok_or("missing field `source`")?,
        args: get_i64_array(json, "args").unwrap_or_default(),
        model,
        issue: get_u64(json, "issue").ok_or("missing field `issue`")? as u32,
        branches: get_u64(json, "branches").ok_or("missing field `branches`")? as u32,
        memory,
        max_cycles: get_u64(json, "max_cycles").unwrap_or(DEFAULT_CYCLE_LIMIT),
    })
}

/// Serializes a batch body: `{"cells":[...]}`.
pub fn batch_to_json(reqs: &[CellRequest]) -> String {
    let cells: Vec<String> = reqs.iter().map(request_to_json).collect();
    format!("{{\"cells\":[{}]}}", cells.join(","))
}

/// Parses a batch body into its requests, in order.
pub fn parse_batch(json: &str) -> Result<Vec<CellRequest>, String> {
    let body = array_body(json, "cells").ok_or("missing array `cells`")?;
    split_objects(body)
        .into_iter()
        .enumerate()
        .map(|(i, obj)| parse_request(obj).map_err(|e| format!("cell {i}: {e}")))
        .collect()
}

// ---------------------------------------------------------------------------
// Cell response serialization.
// ---------------------------------------------------------------------------

/// Per-request outcome class (the `status` wire field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Served from the store — no compile, no simulation.
    Hit,
    /// Computed by this request and recorded in the store.
    Computed,
    /// Permanently failed; the payload describes why.
    Failed,
    /// Bounded queue was full — typed backpressure, retry later.
    Rejected,
    /// The store refuses this fingerprint: two different results were
    /// recorded under it, so neither can be trusted.
    Conflict,
}

impl CellStatus {
    /// The wire slug.
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Hit => "hit",
            CellStatus::Computed => "computed",
            CellStatus::Failed => "failed",
            CellStatus::Rejected => "rejected",
            CellStatus::Conflict => "conflict",
        }
    }

    /// Parses the wire slug.
    pub fn parse(s: &str) -> Option<CellStatus> {
        match s {
            "hit" => Some(CellStatus::Hit),
            "computed" => Some(CellStatus::Computed),
            "failed" => Some(CellStatus::Failed),
            "rejected" => Some(CellStatus::Rejected),
            "conflict" => Some(CellStatus::Conflict),
            _ => None,
        }
    }
}

/// One per-request structured answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResponse {
    /// Outcome class.
    pub status: CellStatus,
    /// The request's content address (empty for `rejected`, whose work
    /// was never admitted).
    pub fingerprint: String,
    /// The stats, for `hit`/`computed`.
    pub stats: Option<SimStats>,
    /// True when the degradation ladder had to disable passes.
    pub degraded: bool,
    /// Failure stage slug, for `failed`.
    pub stage: Option<String>,
    /// Stable triage signature, for `failed`.
    pub signature: Option<String>,
    /// Rendered error, for `failed`/`rejected`.
    pub error: Option<String>,
}

impl CellResponse {
    /// A successful answer (`hit` or `computed`).
    pub fn served(
        status: CellStatus,
        fingerprint: String,
        stats: SimStats,
        degraded: bool,
    ) -> Self {
        CellResponse {
            status,
            fingerprint,
            stats: Some(stats),
            degraded,
            stage: None,
            signature: None,
            error: None,
        }
    }

    /// A failure answer.
    pub fn failed(fingerprint: String, stage: String, signature: String, error: String) -> Self {
        CellResponse {
            status: CellStatus::Failed,
            fingerprint,
            stats: None,
            degraded: false,
            stage: Some(stage),
            signature: Some(signature),
            error: Some(error),
        }
    }

    /// The typed backpressure answer.
    pub fn rejected(error: String) -> Self {
        CellResponse {
            status: CellStatus::Rejected,
            fingerprint: String::new(),
            stats: None,
            degraded: false,
            stage: None,
            signature: None,
            error: Some(error),
        }
    }

    /// The conflicted-key refusal.
    pub fn conflict(fingerprint: String) -> Self {
        CellResponse {
            status: CellStatus::Conflict,
            fingerprint,
            stats: None,
            degraded: false,
            stage: None,
            signature: None,
            error: Some("fingerprint conflict: key quarantined".to_string()),
        }
    }
}

/// Serializes one response object.
pub fn response_to_json(resp: &CellResponse) -> String {
    let mut out = format!(
        "{{\"status\":\"{}\",\"fingerprint\":\"{}\"",
        resp.status.as_str(),
        escape(&resp.fingerprint)
    );
    if let Some(s) = &resp.stats {
        out.push_str(&format!(
            ",\"degraded\":{},\"cycles\":{},\"insts\":{},\"nullified\":{},\
             \"branches\":{},\"mispredicts\":{},\"loads\":{},\"stores\":{},\
             \"icache_misses\":{},\"dcache_misses\":{},\"ret\":{}",
            resp.degraded,
            s.cycles,
            s.insts,
            s.nullified,
            s.branches,
            s.mispredicts,
            s.loads,
            s.stores,
            s.icache_misses,
            s.dcache_misses,
            s.ret,
        ));
    }
    if let Some(stage) = &resp.stage {
        out.push_str(&format!(",\"stage\":\"{}\"", escape(stage)));
    }
    if let Some(sig) = &resp.signature {
        out.push_str(&format!(",\"signature\":\"{}\"", escape(sig)));
    }
    if let Some(err) = &resp.error {
        out.push_str(&format!(",\"error\":\"{}\"", escape(err)));
    }
    out.push('}');
    out
}

/// Parses one response object.
pub fn parse_response(json: &str) -> Result<CellResponse, String> {
    let status_slug = get_str(json, "status").ok_or("missing field `status`")?;
    let status =
        CellStatus::parse(&status_slug).ok_or_else(|| format!("unknown status `{status_slug}`"))?;
    let stats = get_u64(json, "cycles").map(|cycles| SimStats {
        cycles,
        insts: get_u64(json, "insts").unwrap_or(0),
        nullified: get_u64(json, "nullified").unwrap_or(0),
        branches: get_u64(json, "branches").unwrap_or(0),
        mispredicts: get_u64(json, "mispredicts").unwrap_or(0),
        loads: get_u64(json, "loads").unwrap_or(0),
        stores: get_u64(json, "stores").unwrap_or(0),
        icache_misses: get_u64(json, "icache_misses").unwrap_or(0),
        dcache_misses: get_u64(json, "dcache_misses").unwrap_or(0),
        ret: get_i64(json, "ret").unwrap_or(0),
    });
    Ok(CellResponse {
        status,
        fingerprint: get_str(json, "fingerprint").unwrap_or_default(),
        stats,
        degraded: get_bool(json, "degraded").unwrap_or(false),
        stage: get_str(json, "stage"),
        signature: get_str(json, "signature"),
        error: get_str(json, "error"),
    })
}

/// Serializes a batch response: `{"results":[...]}`.
pub fn batch_response_to_json(resps: &[CellResponse]) -> String {
    let results: Vec<String> = resps.iter().map(response_to_json).collect();
    format!("{{\"results\":[{}]}}", results.join(","))
}

/// Parses a batch response into its per-cell answers, in order.
pub fn parse_batch_response(json: &str) -> Result<Vec<CellResponse>, String> {
    let body = array_body(json, "results").ok_or("missing array `results`")?;
    split_objects(body)
        .into_iter()
        .enumerate()
        .map(|(i, obj)| parse_response(obj).map_err(|e| format!("result {i}: {e}")))
        .collect()
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1, shared by the daemon and its clients.
// ---------------------------------------------------------------------------

/// One parsed HTTP request (the slice of HTTP the service speaks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// `GET` / `POST`.
    pub method: String,
    /// Path only (no query parsing — the protocol does not use queries).
    pub path: String,
    /// Raw body (empty for bodyless requests).
    pub body: String,
}

/// Reads one HTTP request off `stream`. Returns `Ok(None)` on a cleanly
/// closed idle connection (EOF before any bytes).
///
/// # Errors
/// Malformed request lines, bodies over [`MAX_BODY_BYTES`], and
/// transport errors.
pub fn read_http_request(stream: &mut impl Read) -> io::Result<Option<HttpRequest>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("body of {content_length} bytes exceeds cap {MAX_BODY_BYTES}"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(Some(HttpRequest { method, path, body }))
}

/// Writes one HTTP response (status + body) and flushes.
///
/// # Errors
/// Transport errors only.
pub fn write_http_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Issues one `method path` request with `body` against `addr`
/// (`host:port`) and returns `(status, body)`.
///
/// # Errors
/// Transport errors, malformed responses, bodies over [`MAX_BODY_BYTES`].
pub fn http_call(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    http_call_on(stream, addr, method, path, body)
}

/// Like [`http_call`], but with bounded connect and read/write timeouts
/// — the variant [`crate::client::Client`] builds on, so a dead or hung
/// daemon degrades into a typed `TimedOut`/`WouldBlock` error instead
/// of blocking forever.
///
/// # Errors
/// See [`http_call`]; additionally `TimedOut` on a slow connect and the
/// platform's read-timeout kind (`WouldBlock` on Unix) on a stalled
/// response.
pub fn http_call_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> io::Result<(u16, String)> {
    let mut last = io::Error::new(
        io::ErrorKind::AddrNotAvailable,
        format!("no addresses resolved for {addr}"),
    );
    let mut stream = None;
    for sock_addr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock_addr, connect_timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last = e,
        }
    }
    let Some(stream) = stream else {
        return Err(last);
    };
    stream.set_read_timeout(Some(read_timeout)).ok();
    stream.set_write_timeout(Some(read_timeout)).ok();
    http_call_on(stream, addr, method, path, body)
}

/// The shared request/response exchange over an already-connected stream.
fn http_call_on(
    mut stream: TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    stream.set_nodelay(true).ok();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        // The server died before sending a byte (kill mid-request):
        // retryable transport loss, not a protocol violation.
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line: {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) if n > MAX_BODY_BYTES => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response body of {n} bytes exceeds cap {MAX_BODY_BYTES}"),
            ))
        }
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            let mut buf = String::new();
            reader
                .take(MAX_BODY_BYTES as u64)
                .read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((status, body))
}

/// `POST path` with a JSON body.
///
/// # Errors
/// See [`http_call`].
pub fn http_post(addr: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    http_call(addr, "POST", path, body)
}

// ---------------------------------------------------------------------------
// Load generation (`hyperpredc bench-load`).
// ---------------------------------------------------------------------------

/// What `bench-load` sends: seeded generated programs fanned across the
/// three models, batched into `/v1/cells` posts.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Total cell requests to send.
    pub cells: usize,
    /// Cells per `/v1/cells` post.
    pub batch: usize,
    /// Base seed for the program generator.
    pub seed: u64,
    /// Issue width every request asks for.
    pub issue: u32,
    /// Branch slots every request asks for.
    pub branches: u32,
    /// Attempts per batch (transport retries and rejected-cell
    /// re-posts), with exponential backoff between them.
    pub attempts: u32,
    /// Base backoff between attempts (doubles per attempt, jittered).
    pub backoff: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7199".to_string(),
            cells: 120,
            batch: 40,
            seed: 1,
            issue: 8,
            branches: 1,
            attempts: 4,
            backoff: Duration::from_millis(100),
        }
    }
}

/// The deterministic request list for a [`LoadConfig`]: generated MiniC
/// programs (cycling profiles and seeds) crossed with the three models,
/// so repeated invocations with the same seed address the same cells —
/// the second run is the cache-hit measurement.
pub fn load_requests(cfg: &LoadConfig) -> Vec<CellRequest> {
    let mut reqs = Vec::with_capacity(cfg.cells);
    let mut round = 0u64;
    'outer: loop {
        for profile in Profile::ALL {
            let program = gen::generate(profile, cfg.seed.wrapping_add(round));
            for model in Model::ALL {
                if reqs.len() >= cfg.cells {
                    break 'outer;
                }
                reqs.push(CellRequest {
                    name: program.name.clone(),
                    source: program.source.clone(),
                    args: program.args.clone(),
                    model,
                    issue: cfg.issue,
                    branches: cfg.branches,
                    memory: MemoryModel::Perfect,
                    max_cycles: DEFAULT_CYCLE_LIMIT,
                });
            }
        }
        round += 1;
    }
    reqs
}

/// One measured `bench-load` pass.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: usize,
    /// Answers served from the store.
    pub hits: usize,
    /// Answers computed fresh.
    pub computed: usize,
    /// Permanent failures.
    pub failed: usize,
    /// Typed backpressure rejections.
    pub rejected: usize,
    /// Conflicted-key refusals.
    pub conflicts: usize,
    /// Wall time for the whole pass.
    pub wall: Duration,
    /// Requests per second (wall clamped to a minimum measurable
    /// duration, so a tiny pass reports a finite rate).
    pub requests_per_sec: f64,
    /// `hits / sent` (0 when nothing was sent).
    pub hit_rate: f64,
    /// Cells whose batch could not be delivered at all (connection
    /// refused/reset/timeout after every retry). Counted under
    /// [`LoadReport::failed`] too — these are the typed `transport`
    /// failures in the response list.
    pub transport_failures: usize,
    /// Retry rounds the client spent (transport and rejected-cell).
    pub retries: u64,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells in {:.2?}: {:.0} req/s, {} hit ({:.1}%), {} computed, \
             {} failed, {} rejected, {} conflicted",
            self.sent,
            self.wall,
            self.requests_per_sec,
            self.hits,
            self.hit_rate * 100.0,
            self.computed,
            self.failed,
            self.rejected,
            self.conflicts,
        )?;
        if self.transport_failures > 0 || self.retries > 0 {
            write!(
                f,
                " ({} transport-failed, {} retries)",
                self.transport_failures, self.retries
            )?;
        }
        Ok(())
    }
}

/// Sends `reqs` to the daemon in batches and tallies the answers.
/// Delivery goes through [`crate::client::Client`], so a refused or
/// reset connection is retried with backoff; a batch that stays
/// undeliverable after every attempt degrades into typed per-cell
/// `transport` failures (counted in
/// [`LoadReport::transport_failures`]) and the pass *continues* — it
/// never aborts mid-stream.
///
/// # Errors
/// Protocol errors only: a non-200/503 answer, an unparseable response,
/// or a result count that does not match the batch. An unreachable
/// daemon is a typed failure in the report, not an `Err`.
pub fn run_load(
    cfg: &LoadConfig,
    reqs: &[CellRequest],
) -> io::Result<(LoadReport, Vec<CellResponse>)> {
    use crate::client::{Client, ClientConfig, ClientError};
    let client = Client::new(ClientConfig {
        addr: cfg.addr.clone(),
        max_attempts: cfg.attempts.max(1),
        backoff: cfg.backoff,
        ..ClientConfig::default()
    });
    let started = Instant::now();
    let mut responses: Vec<CellResponse> = Vec::with_capacity(reqs.len());
    let mut transport_failures = 0usize;
    for chunk in reqs.chunks(cfg.batch.max(1)) {
        match client.post_cells(chunk) {
            Ok(batch) => responses.extend(batch),
            Err(ClientError::Exhausted { attempts, last }) => {
                transport_failures += chunk.len();
                for req in chunk {
                    responses.push(CellResponse::failed(
                        String::new(),
                        "transport".to_string(),
                        "transport: undeliverable".to_string(),
                        format!(
                            "cell {}: transport failure after {attempts} attempt(s): {last}",
                            req.name
                        ),
                    ));
                }
            }
            Err(ClientError::Fatal(e)) => return Err(e),
        }
    }
    let wall = started.elapsed();
    let mut report = LoadReport {
        sent: responses.len(),
        hits: 0,
        computed: 0,
        failed: 0,
        rejected: 0,
        conflicts: 0,
        wall,
        requests_per_sec: 0.0,
        hit_rate: 0.0,
        transport_failures,
        retries: client.retries(),
    };
    for r in &responses {
        match r.status {
            CellStatus::Hit => report.hits += 1,
            CellStatus::Computed => report.computed += 1,
            CellStatus::Failed => report.failed += 1,
            CellStatus::Rejected => report.rejected += 1,
            CellStatus::Conflict => report.conflicts += 1,
        }
    }
    // Clamp like the bench harness: a sub-nanosecond wall must report a
    // finite rate the JSON layer can round-trip.
    let secs = wall.as_secs_f64().max(1e-9);
    report.requests_per_sec = report.sent as f64 / secs;
    if report.sent > 0 {
        report.hit_rate = report.hits as f64 / report.sent as f64;
    }
    Ok((report, responses))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(seed: u64) -> SimStats {
        SimStats {
            cycles: seed,
            insts: seed + 1,
            nullified: seed + 2,
            branches: seed + 3,
            mispredicts: seed + 4,
            loads: seed + 5,
            stores: seed + 6,
            icache_misses: seed + 7,
            dcache_misses: seed + 8,
            ret: -(seed as i64),
        }
    }

    fn request() -> CellRequest {
        CellRequest {
            name: "gen-branchy-1".to_string(),
            source: "int main() { return 1 + 2; }".to_string(),
            args: vec![1, -2],
            model: Model::FullPred,
            issue: 8,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: 1_000_000,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = request();
        let json = request_to_json(&req);
        let parsed = parse_request(&json).expect("parses");
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_with_hostile_source_round_trips() {
        // Source text that contains every key pattern the parser looks
        // for, with quotes — the backslash-aware key search must not be
        // spoofed by the escaped copies inside the value.
        let mut req = request();
        req.source =
            "int main() { /* \"issue\":0,\"model\":\"zzz\",\"args\":[9] */ return 3; }".to_string();
        req.memory = MemoryModel::Caches(CacheConfig::default());
        let json = request_to_json(&req);
        let parsed = parse_request(&json).expect("parses");
        assert_eq!(parsed, req);
    }

    #[test]
    fn batch_round_trips() {
        let mut b = request();
        b.name = "second { } [ ] \" cell".to_string();
        b.model = Model::Superblock;
        let reqs = vec![request(), b];
        let json = batch_to_json(&reqs);
        let parsed = parse_batch(&json).expect("parses");
        assert_eq!(parsed, reqs);
    }

    #[test]
    fn responses_round_trip_bit_identically() {
        let cases = vec![
            CellResponse::served(CellStatus::Hit, "aa".to_string(), stats(7), false),
            CellResponse::served(CellStatus::Computed, "bb".to_string(), stats(9), true),
            CellResponse::failed(
                "cc".to_string(),
                "compile".to_string(),
                "compile: 1:2 boom".to_string(),
                "1:2: boom \"quoted\"".to_string(),
            ),
            CellResponse::rejected("queue full (depth 4); retry later".to_string()),
            CellResponse::conflict("dd".to_string()),
        ];
        let json = batch_response_to_json(&cases);
        let parsed = parse_batch_response(&json).expect("parses");
        assert_eq!(parsed, cases, "every status round-trips exactly");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(parse_request("{}").unwrap_err().contains("model"));
        assert!(parse_request("{\"model\":\"nope\",\"source\":\"x\"}")
            .unwrap_err()
            .contains("unknown model"));
        let no_issue = "{\"model\":\"fullpred\",\"source\":\"int main(){return 0;}\"}";
        assert!(parse_request(no_issue).unwrap_err().contains("issue"));
        assert!(parse_batch("{\"cells\":\"nope\"}").is_err());
    }

    #[test]
    fn load_requests_are_deterministic_and_sized() {
        let cfg = LoadConfig {
            cells: 47,
            ..LoadConfig::default()
        };
        let a = load_requests(&cfg);
        let b = load_requests(&cfg);
        assert_eq!(a.len(), 47);
        assert_eq!(a, b, "same seed, same request list");
        assert!(
            a.iter().any(|r| r.model == Model::CondMove),
            "models are crossed in"
        );
    }

    #[test]
    fn http_request_parsing_handles_bodies_and_eof() {
        let raw = b"POST /v1/cells HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_http_request(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/cells");
        assert_eq!(req.body, "abcd");
        assert!(read_http_request(&mut &b""[..]).unwrap().is_none());
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(read_http_request(&mut huge.as_bytes()).is_err());
    }
}
