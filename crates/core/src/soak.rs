//! Adversarial soak testing: generated workloads, cross-model
//! differential oracles, and journaled crash-safe resume.
//!
//! `hyperpredc soak` drives the seeded MiniC generator
//! ([`hyperpred_workloads::gen`]) through the full pipeline: every
//! generated program is compiled under all three execution models at
//! several machine widths (with the [`Pipeline::finish_degraded`]
//! degradation ladder, so budget-tripping pathological inputs fall back
//! instead of failing), emulated, and simulated, and a battery of
//! end-to-end oracles is enforced per configuration:
//!
//! * **Differential emulation** — the pre-decoded emulator and the
//!   struct-walking [`ReferenceEmulator`] must produce bit-identical
//!   event streams (return value, event count, rolling event hash).
//! * **Cross-model architecture** — every (model, width) combination
//!   must return the baseline's result and produce the baseline's
//!   executed-store address stream. Nullified stores and the partial
//!   model's [`SAFE_ADDR`] redirects are excluded: they are
//!   predication *mechanics*, not architectural side effects.
//! * **Timing sanity** — [`SimStats`] must agree exactly with an
//!   independent [`DynStats`] trace (instructions, branches, nullified,
//!   loads, stores), return the emulator's result, respect the issue
//!   width's cycle floor, and keep misses bounded by references.
//! * **Lint checkpoints** — soak always compiles with the per-pass
//!   semantic checkers on, so every intermediate module is verified.
//!
//! Failures are contained per program (panics included, via the matrix
//! engine's capture hook), normalized to a signature, and emitted as
//! repro bundles through [`crate::triage`]; `hyperpredc repro` replays
//! soak bundles through this module's [`replay_cell`], which re-runs the
//! same oracle battery — so even cross-model divergences minimize.
//!
//! Completed programs are journaled ([`RunJournal`]) under a config
//! fingerprint; a killed soak resumed with the same journal skips them
//! bit-identically and re-runs only what is missing.

use crate::journal::{fnv64, JournalEntry, RunJournal};
use crate::matrix::{catch_cell, stage_of, FailurePayload, FailureStage};
use crate::pipeline::{FrontOutput, Model, Pipeline, PipelineError, Stage};
use crate::predoracle::{PredClaims, PredOracleSink};
use crate::triage::{self, ReproCell, TriageConfig};
use hyperpred_emu::decode::DCode;
use hyperpred_emu::{DynStats, Emulator, Event, ReferenceEmulator, Tee, TraceSink};
use hyperpred_ir::module::SAFE_ADDR;
use hyperpred_ir::{BlockId, FuncId, Module};
use hyperpred_lang::lower::entry_args;
use hyperpred_sched::MachineConfig;
use hyperpred_sim::{simulate, CacheConfig, MemoryModel, SimConfig, SimStats};
use hyperpred_workloads::gen::{generate, GenProgram, Profile};
use std::cell::RefCell;
use std::io;
use std::path::PathBuf;

/// The experiment name soak stamps into journals and repro bundles.
/// [`triage::replay`] routes cells with this experiment back through
/// [`replay_cell`], so oracle failures replay under the oracle battery.
pub const SOAK_EXPERIMENT: &str = "soak";

/// Soak-run parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Base seed; program `i` is generated from `seed + i`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub cells: usize,
    /// Generator profiles, cycled per program. Empty means all.
    pub profiles: Vec<Profile>,
    /// Machine shapes `(issue_width, branches_per_cycle)` each model is
    /// simulated at, on top of the canonical 1-issue baseline.
    pub widths: Vec<(u32, u32)>,
    /// Journal file for crash-safe resume (`None` disables journaling).
    pub journal: Option<PathBuf>,
    /// Repro-bundle emission for failures (`None` disables triage).
    pub triage: Option<TriageConfig>,
    /// Stop (reporting `interrupted`) after this many programs — the
    /// test hook for exercising resume without killing a process.
    pub cell_limit: Option<usize>,
    /// Chaos hook: sabotage the module after this pass in every compile,
    /// so the run exercises checkpoint blame and bundle emission.
    pub sabotage: Option<Stage>,
    /// Simulation watchdog budget per configuration.
    pub max_cycles: u64,
    /// Emulation fuel per run (profiling and differential runs).
    pub fuel: u64,
}

impl SoakConfig {
    /// Default battery: all profiles, three machine shapes, journaling
    /// and triage off.
    pub fn new(seed: u64, cells: usize) -> SoakConfig {
        SoakConfig {
            seed,
            cells,
            profiles: Profile::ALL.to_vec(),
            widths: vec![(1, 1), (4, 1), (8, 2)],
            journal: None,
            triage: None,
            cell_limit: None,
            sabotage: None,
            max_cycles: 2_000_000,
            fuel: 50_000_000,
        }
    }
}

/// One permanently failed program.
#[derive(Debug)]
pub struct SoakFailure {
    /// Generated workload name (`gen-<profile>-<seed>`).
    pub workload: String,
    /// Profile it was drawn from.
    pub profile: Profile,
    /// Its generator seed (regenerate with `generate(profile, seed)`).
    pub seed: u64,
    /// Normalized failure signature.
    pub signature: String,
    /// Repro bundle directory, when triage was configured and the write
    /// succeeded.
    pub bundle: Option<PathBuf>,
}

/// What a soak run did.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Programs the configuration asked for.
    pub programs: usize,
    /// Programs actually run this invocation.
    pub ran: usize,
    /// Programs skipped because the journal already had them.
    pub skipped: usize,
    /// Programs that needed the degradation ladder to finish a compile.
    pub degraded: usize,
    /// Permanent failures, in discovery order.
    pub failures: Vec<SoakFailure>,
    /// True when `cell_limit` stopped the run early.
    pub interrupted: bool,
    /// Corrupt journal records skipped at open (see [`RunJournal::corrupt`]).
    pub journal_corrupt: usize,
}

impl SoakReport {
    /// True when every requested program ran (or was journaled) clean.
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && !self.interrupted
    }
}

// ---------------------------------------------------------------------------
// Observation sink
// ---------------------------------------------------------------------------

/// FNV-1a step over one little-endian word.
fn fold(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sink that reduces a run to comparable observations: a rolling hash
/// of the full event stream (for the decoded-vs-reference differential),
/// the executed-store address stream (for the cross-model architectural
/// oracle), and [`DynStats`] counters (for the timing-sanity oracle).
/// Bounded memory: only store addresses are retained, never events.
struct SoakSink {
    hash: u64,
    events: u64,
    stores: Vec<u64>,
    dync: DynStats,
}

impl SoakSink {
    fn new() -> SoakSink {
        SoakSink {
            hash: 0xcbf2_9ce4_8422_2325,
            events: 0,
            stores: Vec::new(),
            dync: DynStats::new(),
        }
    }
}

impl TraceSink for SoakSink {
    fn enter_block(&mut self, func: FuncId, block: BlockId) {
        self.dync.enter_block(func, block);
        self.hash = fold(fold(self.hash, u64::from(func.0)), u64::from(block.0));
    }

    fn inst(&mut self, ev: &Event) {
        self.dync.inst(ev);
        self.events += 1;
        let mut h = fold(self.hash, ev.code as u64);
        h = fold(h, ev.index as u64);
        h = fold(
            h,
            u64::from(ev.nullified) | (ev.taken.map_or(0, |t| 2 | u64::from(t) << 2)),
        );
        h = fold(h, ev.mem_addr.map_or(u64::MAX, |a| a));
        self.hash = h;
        if matches!(ev.code, DCode::StByte | DCode::StWord)
            && !ev.nullified
            && ev.mem_addr.is_some_and(|a| a != SAFE_ADDR)
        {
            self.stores.push(ev.mem_addr.unwrap_or(0));
        }
    }
}

/// Architectural observations of one (model, machine) configuration.
struct Observed {
    ret: i64,
    stores: Vec<u64>,
}

// ---------------------------------------------------------------------------
// The per-configuration oracle battery
// ---------------------------------------------------------------------------

fn pipe_for(sabotage: Option<Stage>, fuel: u64) -> Pipeline {
    Pipeline {
        // Soak's whole point is end-to-end checking: every per-pass lint
        // checkpoint stays on even in release builds.
        checks: true,
        sabotage,
        profile_fuel: fuel,
        ..Pipeline::default()
    }
}

fn sim_for(max_cycles: u64) -> SimConfig {
    SimConfig {
        memory: MemoryModel::Caches(CacheConfig::default()),
        max_cycles,
        ..SimConfig::default()
    }
}

fn oracle(workload: &str, model: Model, check: &'static str, detail: String) -> PipelineError {
    PipelineError::Oracle {
        workload: workload.to_string(),
        model,
        check,
        detail,
    }
}

/// Compiles (with the degradation ladder), runs the decoded and reference
/// emulators differentially, simulates, and checks every single-config
/// oracle. Returns the stats, the architectural observations (for the
/// caller's cross-model comparison), and whether the ladder degraded.
#[allow(clippy::too_many_arguments)]
fn run_config(
    pipe: &Pipeline,
    front: &FrontOutput,
    model: Model,
    machine: &MachineConfig,
    workload: &str,
    args: &[i64],
    fuel: u64,
    max_cycles: u64,
    module_slot: &RefCell<Option<Module>>,
) -> Result<(SimStats, Observed, bool), PipelineError> {
    // Drop any previous configuration's module first: if this compile
    // fails, triage must not dump a stale module as if it were this one.
    *module_slot.borrow_mut() = None;
    let (module, deg) = pipe.finish_degraded(front, model, machine)?;
    let eargs = entry_args(args);

    // Differential emulation: decoded vs reference, full event stream.
    // Both runs are additionally audited by the predicate-relation
    // oracle: every dynamic predicate write must satisfy the claims the
    // relation analysis makes about the final module.
    let claims = PredClaims::build(&module);
    let mut pred_sink = PredOracleSink::new(&claims);
    let mut decoded_sink = SoakSink::new();
    let out = Emulator::new(&module).with_fuel(fuel).run(
        "main",
        &eargs,
        &mut Tee::new(&mut decoded_sink, &mut pred_sink),
    );
    let mut reference_sink = SoakSink::new();
    let ref_out = ReferenceEmulator::new(&module).with_fuel(fuel).run(
        "main",
        &eargs,
        &mut Tee::new(&mut reference_sink, &mut pred_sink),
    );
    // Keep the module for triage *before* any oracle can fail.
    *module_slot.borrow_mut() = Some(module.clone());
    if let Some(v) = pred_sink.violation.take() {
        return Err(oracle(workload, model, "pred-relations", v));
    }
    let (out, ref_out) = match (out, ref_out) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(a), Err(b)) if format!("{a}") == format!("{b}") => return Err(a.into()),
        (a, b) => {
            return Err(oracle(
                workload,
                model,
                "decoded-vs-reference",
                format!("decoded: {a:?}, reference: {b:?}"),
            ))
        }
    };
    if out.ret != ref_out.ret
        || decoded_sink.events != reference_sink.events
        || decoded_sink.hash != reference_sink.hash
    {
        return Err(oracle(
            workload,
            model,
            "decoded-vs-reference",
            format!(
                "decoded ret {} / {} events / hash {:016x}, \
                 reference ret {} / {} events / hash {:016x}",
                out.ret,
                decoded_sink.events,
                decoded_sink.hash,
                ref_out.ret,
                reference_sink.events,
                reference_sink.hash
            ),
        ));
    }

    // Timing simulation plus sanity invariants against the trace.
    let stats = simulate(&module, "main", &eargs, *machine, sim_for(max_cycles))?;
    let d = &decoded_sink.dync;
    let fail = |check: &'static str, detail: String| Err(oracle(workload, model, check, detail));
    if stats.ret != out.ret {
        return fail(
            "sim-ret",
            format!("sim {} vs emulator {}", stats.ret, out.ret),
        );
    }
    if stats.insts != d.insts || stats.nullified != d.nullified {
        return fail(
            "trace-insts",
            format!(
                "sim {}/{} nullified vs trace {}/{}",
                stats.insts, stats.nullified, d.insts, d.nullified
            ),
        );
    }
    if stats.branches != d.branches {
        return fail(
            "trace-branches",
            format!("sim {} vs trace {}", stats.branches, d.branches),
        );
    }
    if stats.loads != d.loads || stats.stores != d.stores {
        return fail(
            "trace-memops",
            format!(
                "sim {}/{} vs trace {}/{}",
                stats.loads, stats.stores, d.loads, d.stores
            ),
        );
    }
    let floor = stats.insts.div_ceil(u64::from(machine.issue_width.max(1)));
    if stats.cycles < floor {
        return fail(
            "cycle-floor",
            format!(
                "{} cycles < {floor} ({} insts at width {})",
                stats.cycles, stats.insts, machine.issue_width
            ),
        );
    }
    if stats.mispredicts > stats.branches
        || stats.dcache_misses > stats.loads
        || stats.icache_misses > stats.insts
    {
        return fail(
            "reference-bound",
            format!(
                "mispredicts {}/{} branches, dcache {}/{} loads, icache {}/{} insts",
                stats.mispredicts,
                stats.branches,
                stats.dcache_misses,
                stats.loads,
                stats.icache_misses,
                stats.insts
            ),
        );
    }

    Ok((
        stats,
        Observed {
            ret: out.ret,
            stores: decoded_sink.stores,
        },
        deg.is_degraded(),
    ))
}

/// Compares one configuration's architectural observations against the
/// canonical baseline's.
fn check_against_baseline(
    workload: &str,
    model: Model,
    obs: &Observed,
    base: &Observed,
) -> Result<(), PipelineError> {
    if obs.ret != base.ret {
        return Err(PipelineError::Diverged {
            workload: workload.to_string(),
            model,
            got: obs.ret,
            want: base.ret,
        });
    }
    if obs.stores != base.stores {
        let at = obs
            .stores
            .iter()
            .zip(&base.stores)
            .position(|(a, b)| a != b);
        return Err(oracle(
            workload,
            model,
            "store-stream",
            format!(
                "{} executed stores vs baseline {} (first mismatch at {:?})",
                obs.stores.len(),
                base.stores.len(),
                at
            ),
        ));
    }
    Ok(())
}

/// The canonical baseline configuration every model/width is compared
/// against: the unpredicated superblock model on a 1-issue machine.
fn baseline_machine() -> MachineConfig {
    MachineConfig::new(1, 1)
}

// ---------------------------------------------------------------------------
// Per-program battery and the soak loop
// ---------------------------------------------------------------------------

/// Fingerprint of one generated program under one soak configuration:
/// anything that changes the battery's behavior changes the key, so a
/// journal from a different seed, width set, sabotage mode, or crate
/// version never short-circuits a cell.
fn fingerprint(cfg: &SoakConfig, prog: &GenProgram) -> String {
    // `battery` names the oracle set; bump it when a new check joins so
    // journals written before the check never short-circuit past it.
    let mut key = format!(
        "soak|crate={}|battery=predrel|profile={}|seed={}|src={:016x}|args={:?}|sabotage={}|max_cycles={}|fuel={}|widths=",
        env!("CARGO_PKG_VERSION"),
        prog.profile,
        prog.seed,
        fnv64(prog.source.as_bytes()),
        prog.args,
        cfg.sabotage.map_or("none", Stage::name),
        cfg.max_cycles,
        cfg.fuel,
    );
    for (i, b) in &cfg.widths {
        key.push_str(&format!("{i}x{b},"));
    }
    format!("{:016x}", fnv64(key.as_bytes()))
}

/// The battery outcome for one program: the last configuration's stats
/// (journaled on success), the model that produced them, and whether any
/// configuration degraded.
struct ProgramPass {
    stats: SimStats,
    model: Model,
    degraded: bool,
}

fn run_program(
    cfg: &SoakConfig,
    prog: &GenProgram,
    module_slot: &RefCell<Option<Module>>,
    current: &RefCell<(Option<Model>, u32, u32)>,
) -> Result<ProgramPass, PipelineError> {
    let pipe = pipe_for(cfg.sabotage, cfg.fuel);
    *current.borrow_mut() = (None, 1, 1);
    let front = pipe.front(&prog.source, &prog.args)?;

    *current.borrow_mut() = (Some(Model::Superblock), 1, 1);
    let (base_stats, base_obs, base_deg) = run_config(
        &pipe,
        &front,
        Model::Superblock,
        &baseline_machine(),
        &prog.name,
        &prog.args,
        cfg.fuel,
        cfg.max_cycles,
        module_slot,
    )?;
    let mut pass = ProgramPass {
        stats: base_stats,
        model: Model::Superblock,
        degraded: base_deg,
    };

    for &(issue, branches) in &cfg.widths {
        let machine = MachineConfig::new(issue.max(1), branches.max(1));
        for model in Model::ALL {
            if model == Model::Superblock && (issue, branches) == (1, 1) {
                continue; // this is the baseline itself
            }
            *current.borrow_mut() = (Some(model), issue, branches);
            let (stats, obs, deg) = run_config(
                &pipe,
                &front,
                model,
                &machine,
                &prog.name,
                &prog.args,
                cfg.fuel,
                cfg.max_cycles,
                module_slot,
            )?;
            check_against_baseline(&prog.name, model, &obs, &base_obs)?;
            pass = ProgramPass {
                stats,
                model,
                degraded: pass.degraded || deg,
            };
        }
    }
    Ok(pass)
}

/// Runs the soak battery over `cfg.cells` generated programs, journaling
/// completions and emitting repro bundles for failures.
///
/// # Errors
/// Fails only on journal I/O errors; program failures (including panics)
/// are contained, triaged, and reported in the [`SoakReport`].
pub fn run_soak(cfg: &SoakConfig) -> io::Result<SoakReport> {
    let journal = match &cfg.journal {
        Some(p) => Some(RunJournal::open(p)?),
        None => None,
    };
    let profiles: &[Profile] = if cfg.profiles.is_empty() {
        &Profile::ALL
    } else {
        &cfg.profiles
    };
    let mut report = SoakReport {
        programs: cfg.cells,
        journal_corrupt: journal.as_ref().map_or(0, RunJournal::corrupt),
        ..SoakReport::default()
    };

    for i in 0..cfg.cells {
        if cfg.cell_limit.is_some_and(|limit| i >= limit) {
            report.interrupted = true;
            break;
        }
        let profile = profiles[i % profiles.len()];
        let prog = generate(profile, cfg.seed.wrapping_add(i as u64));
        let fp = fingerprint(cfg, &prog);
        if journal.as_ref().is_some_and(|j| j.lookup(&fp).is_some()) {
            report.skipped += 1;
            continue;
        }

        // Per-program containment: a panic anywhere in the battery fails
        // this program, never the run. The slots exist because a panic
        // unwinds past the battery's return value.
        let module_slot: RefCell<Option<Module>> = RefCell::new(None);
        let current: RefCell<(Option<Model>, u32, u32)> = RefCell::new((None, 1, 1));
        let caught = catch_cell(|| run_program(cfg, &prog, &module_slot, &current));
        report.ran += 1;

        let payload = match caught {
            Ok(Ok(pass)) => {
                if pass.degraded {
                    report.degraded += 1;
                }
                if let Some(j) = &journal {
                    j.record(&JournalEntry {
                        fingerprint: &fp,
                        workload: &prog.name,
                        experiment: SOAK_EXPERIMENT,
                        model: Some(pass.model),
                        stats: &pass.stats,
                    })?;
                }
                continue;
            }
            Ok(Err(e)) => FailurePayload::Error(e),
            Err(panic_msg) => FailurePayload::Panic(panic_msg),
        };

        let (model, issue, branches) = *current.borrow();
        let stage = match &payload {
            FailurePayload::Error(e) => stage_of(e),
            FailurePayload::Panic(_) => FailureStage::Compile,
        };
        let cell = ReproCell {
            workload: prog.name.clone(),
            args: prog.args.clone(),
            experiment: SOAK_EXPERIMENT.to_string(),
            model,
            issue,
            branches,
            memory: MemoryModel::Caches(CacheConfig::default()),
            max_cycles: cfg.max_cycles,
            fault_injection: false,
            sabotage: cfg.sabotage,
            stage,
            signature: triage::signature(&payload),
            fingerprint: fp,
            attempts: 1,
        };
        let bundle = cfg.triage.as_ref().and_then(|tcfg| {
            match triage::write_bundle(
                tcfg,
                &cell,
                &prog.source,
                &payload.to_string(),
                module_slot.borrow().as_ref(),
            ) {
                Ok(dir) => Some(dir),
                Err(e) => {
                    eprintln!("soak: could not write bundle for {}: {e}", prog.name);
                    None
                }
            }
        });
        report.failures.push(SoakFailure {
            workload: prog.name.clone(),
            profile: prog.profile,
            seed: prog.seed,
            signature: cell.signature,
            bundle,
        });
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Replay (for `hyperpredc repro` and the minimizers)
// ---------------------------------------------------------------------------

/// Replays one soak cell's oracle battery over `source`: the canonical
/// baseline, then the cell's own (model, machine) configuration with the
/// cross-model comparison. Returns the failure signature, or `None` when
/// everything passes. This is what [`triage::replay`] delegates soak
/// cells to, so minimization probes reproduce oracle failures too.
pub(crate) fn replay_cell(cell: &ReproCell, source: &str) -> Option<String> {
    let fuel = SoakConfig::new(0, 0).fuel;
    let module_slot: RefCell<Option<Module>> = RefCell::new(None);
    let caught = catch_cell(|| -> Result<(), PipelineError> {
        let pipe = pipe_for(cell.sabotage, fuel);
        let front = pipe.front(source, &cell.args)?;
        let (_, base_obs, _) = run_config(
            &pipe,
            &front,
            Model::Superblock,
            &baseline_machine(),
            &cell.workload,
            &cell.args,
            fuel,
            cell.max_cycles,
            &module_slot,
        )?;
        if let Some(model) = cell.model {
            if !(model == Model::Superblock && cell.issue <= 1 && cell.branches <= 1) {
                let machine = MachineConfig::new(cell.issue.max(1), cell.branches.max(1));
                let (_, obs, _) = run_config(
                    &pipe,
                    &front,
                    model,
                    &machine,
                    &cell.workload,
                    &cell.args,
                    fuel,
                    cell.max_cycles,
                    &module_slot,
                )?;
                check_against_baseline(&cell.workload, model, &obs, &base_obs)?;
            }
        }
        Ok(())
    });
    match caught {
        Err(panic_msg) => Some(triage::signature(&FailurePayload::Panic(panic_msg))),
        Ok(Err(e)) => Some(triage::signature(&FailurePayload::Error(e))),
        Ok(Ok(())) => None,
    }
}
