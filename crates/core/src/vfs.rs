//! Injectable store I/O with deterministic fault schedules.
//!
//! Every file operation [`Store`](crate::store::Store) performs goes
//! through a [`Vfs`] handle. The default handle ([`Vfs::real`]) is a
//! transparent passthrough to `std::fs`; a faulted handle
//! ([`Vfs::faulted`]) carries a [`FaultPlan`] that injects failures at
//! exact points in the operation stream, which is how the crash-point
//! torture sweeps in `crates/core/tests/crash.rs` visit *every* byte the
//! store ever writes.
//!
//! # Fault model
//!
//! Mutating operations — writes, fsyncs, file creation, rename, remove,
//! directory sync — each consume one index from a monotonically
//! increasing per-`Vfs` operation counter. Reads are free: they never
//! consume an index, so a schedule derived from one run replays exactly
//! even if the recovery path re-reads files a different number of times.
//!
//! A [`Fault`] scheduled at index `k` fires when the `k`-th mutating
//! operation begins:
//!
//! - [`Fault::Crash`] models `kill -9` / power loss: the current write
//!   keeps only its first `keep` bytes, the operation reports failure,
//!   and **every later operation on this handle fails** — completed
//!   operations survive, nothing after the crash point happens. A crash
//!   scheduled on a non-write operation simply suppresses it.
//! - [`Fault::Torn`] / [`Fault::Short`] write only a prefix of the
//!   buffer and return an error, but the handle stays alive (an
//!   interrupted write the caller gets to see and handle).
//! - [`Fault::Err`] fails the operation with the given `ErrorKind`
//!   (e.g. `StorageFull` for `ENOSPC`) without touching the file.
//! - [`Fault::FsyncFail`] fails the operation — aimed at `sync_all` /
//!   `sync_dir` indices — without syncing; the data may or may not be
//!   durable, which is exactly the contract a failed fsync gives you.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One injected failure. See the module docs for exact semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hard crash point: tear the current write at `keep` bytes, then
    /// fail every later operation on this handle.
    Crash {
        /// Bytes of the in-flight write that reach the file (clamped to
        /// the buffer length; ignored for non-write operations).
        keep: usize,
    },
    /// Torn write: only `keep` bytes land, the call errors, the handle
    /// lives on.
    Torn {
        /// Bytes of the buffer that reach the file.
        keep: usize,
    },
    /// Short write: like [`Fault::Torn`] but surfaced as `WriteZero`,
    /// the kind `write_all` reports for a zero-progress write.
    Short {
        /// Bytes of the buffer that reach the file.
        keep: usize,
    },
    /// Fail the operation with this kind (`Interrupted` is retried by
    /// nothing here — the store treats every error as fatal for the
    /// current call), leaving the file untouched.
    Err(io::ErrorKind),
    /// Fail an fsync (file or directory) without syncing.
    FsyncFail,
}

/// A schedule of faults keyed by mutating-operation index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(u64, Fault)>,
}

impl FaultPlan {
    /// An empty plan (no faults — equivalent to [`Vfs::real`]).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` at mutating-operation index `op`.
    #[must_use]
    pub fn at(mut self, op: u64, fault: Fault) -> FaultPlan {
        self.faults.push((op, fault));
        self
    }

    /// Convenience: a plan with a single hard crash at `op`, tearing the
    /// in-flight write (if any) at `keep` bytes.
    pub fn crash_at(op: u64, keep: usize) -> FaultPlan {
        FaultPlan::new().at(op, Fault::Crash { keep })
    }

    fn take(&mut self, op: u64) -> Option<Fault> {
        let idx = self.faults.iter().position(|(at, _)| *at == op)?;
        Some(self.faults.swap_remove(idx).1)
    }
}

#[derive(Debug)]
struct VfsState {
    plan: Mutex<FaultPlan>,
    ops: AtomicU64,
    crashed: AtomicBool,
}

/// A cloneable handle to one I/O fault domain. Clones share the
/// operation counter and schedule, so every file opened through one
/// logical `Vfs` draws from the same fault stream — exactly like every
/// file descriptor of one process sharing one kernel.
#[derive(Debug, Clone)]
pub struct Vfs(Arc<VfsState>);

impl Default for Vfs {
    fn default() -> Vfs {
        Vfs::real()
    }
}

fn crashed_err() -> io::Error {
    io::Error::other("vfs: process crashed (injected crash point)")
}

fn injected_err(kind: io::ErrorKind) -> io::Error {
    io::Error::new(kind, "vfs: injected fault")
}

impl Vfs {
    /// A passthrough handle: counts operations but never injects faults.
    pub fn real() -> Vfs {
        Vfs::faulted(FaultPlan::new())
    }

    /// A handle that injects `plan`'s faults at their scheduled indices.
    pub fn faulted(plan: FaultPlan) -> Vfs {
        Vfs(Arc::new(VfsState {
            plan: Mutex::new(plan),
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }))
    }

    /// Mutating operations performed so far. Run a workload against a
    /// counting [`Vfs::real`] handle first to learn the sweep range.
    pub fn ops(&self) -> u64 {
        self.0.ops.load(Ordering::SeqCst)
    }

    /// True once a [`Fault::Crash`] has fired on this handle.
    pub fn crashed(&self) -> bool {
        self.0.crashed.load(Ordering::SeqCst)
    }

    /// Claims the next operation index, failing if the handle is dead.
    fn begin_op(&self) -> io::Result<Option<Fault>> {
        if self.crashed() {
            return Err(crashed_err());
        }
        let op = self.0.ops.fetch_add(1, Ordering::SeqCst);
        let fault = self
            .0
            .plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take(op);
        Ok(fault)
    }

    /// Runs a whole-or-nothing mutating operation (create, rename,
    /// remove, mkdir): a write-shaped fault on such an index suppresses
    /// the operation and reports an error.
    fn mutate<T>(&self, f: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        match self.begin_op()? {
            None => f(),
            Some(Fault::Crash { .. }) => {
                self.0.crashed.store(true, Ordering::SeqCst);
                Err(crashed_err())
            }
            Some(Fault::Err(kind)) => Err(injected_err(kind)),
            Some(Fault::FsyncFail) | Some(Fault::Torn { .. }) | Some(Fault::Short { .. }) => {
                Err(injected_err(io::ErrorKind::Other))
            }
        }
    }

    fn write(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        match self.begin_op()? {
            None => file.write_all(buf),
            Some(Fault::Crash { keep }) => {
                let keep = keep.min(buf.len());
                let _ = file.write_all(&buf[..keep]);
                let _ = file.flush();
                self.0.crashed.store(true, Ordering::SeqCst);
                Err(crashed_err())
            }
            Some(Fault::Torn { keep }) => {
                let keep = keep.min(buf.len());
                let _ = file.write_all(&buf[..keep]);
                Err(io::Error::other("vfs: torn write"))
            }
            Some(Fault::Short { keep }) => {
                let keep = keep.min(buf.len());
                let _ = file.write_all(&buf[..keep]);
                Err(io::Error::new(io::ErrorKind::WriteZero, "vfs: short write"))
            }
            Some(Fault::Err(kind)) => Err(injected_err(kind)),
            Some(Fault::FsyncFail) => Err(injected_err(io::ErrorKind::Other)),
        }
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        match self.begin_op()? {
            None => file.sync_all(),
            Some(Fault::Crash { .. }) => {
                self.0.crashed.store(true, Ordering::SeqCst);
                Err(crashed_err())
            }
            Some(Fault::FsyncFail) => Err(injected_err(io::ErrorKind::Other)),
            Some(Fault::Err(kind)) => Err(injected_err(kind)),
            Some(Fault::Torn { .. }) | Some(Fault::Short { .. }) => {
                Err(injected_err(io::ErrorKind::Other))
            }
        }
    }

    fn read_guard(&self) -> io::Result<()> {
        if self.crashed() {
            return Err(crashed_err());
        }
        Ok(())
    }

    /// `create_dir_all` through the fault domain.
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.mutate(|| fs::create_dir_all(dir))
    }

    /// Exclusive (`O_EXCL`) creation of an append-mode file.
    pub fn create_new(&self, path: &Path) -> io::Result<VfsFile> {
        let file = self.mutate(|| OpenOptions::new().create_new(true).append(true).open(path))?;
        Ok(VfsFile {
            vfs: self.clone(),
            file,
        })
    }

    /// Truncating creation of a write-mode file.
    pub fn create(&self, path: &Path) -> io::Result<VfsFile> {
        let file = self.mutate(|| File::create(path))?;
        Ok(VfsFile {
            vfs: self.clone(),
            file,
        })
    }

    /// Opens an existing file in append mode.
    pub fn open_append(&self, path: &Path) -> io::Result<VfsFile> {
        let file = self.mutate(|| OpenOptions::new().append(true).open(path))?;
        Ok(VfsFile {
            vfs: self.clone(),
            file,
        })
    }

    /// Opens (creating if absent) a file in append mode.
    pub fn append(&self, path: &Path) -> io::Result<VfsFile> {
        let file = self.mutate(|| OpenOptions::new().create(true).append(true).open(path))?;
        Ok(VfsFile {
            vfs: self.clone(),
            file,
        })
    }

    /// Reads a whole file, replacing invalid UTF-8 with U+FFFD — a
    /// disk-corrupted byte must degrade to a checksum-failing *line*,
    /// never make the whole file unreadable. Reads never consume a
    /// fault index, but fail once the handle has crashed.
    pub fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.read_guard()?;
        let bytes = fs::read(path)?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Lists the entries of `dir` (paths only, unsorted).
    pub fn read_dir_paths(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.read_guard()?;
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    /// Atomic rename.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.mutate(|| fs::rename(from, to))
    }

    /// File removal.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.mutate(|| fs::remove_file(path))
    }

    /// Fsyncs a *directory*, making renames/creates/removals inside it
    /// durable. One mutating operation.
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.begin_op()? {
            None => File::open(dir)?.sync_all(),
            Some(Fault::Crash { .. }) => {
                self.0.crashed.store(true, Ordering::SeqCst);
                Err(crashed_err())
            }
            Some(Fault::Err(kind)) => Err(injected_err(kind)),
            Some(_) => Err(injected_err(io::ErrorKind::Other)),
        }
    }
}

/// A file whose writes and fsyncs flow through its owning [`Vfs`].
#[derive(Debug)]
pub struct VfsFile {
    vfs: Vfs,
    file: File,
}

impl VfsFile {
    /// Writes the whole buffer (one mutating operation — a fault tears
    /// the buffer as a unit, which matches the store's line-per-write
    /// append discipline).
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.vfs.write(&mut self.file, buf)
    }

    /// Flushes userspace buffers. `File` holds none, so this is free and
    /// consumes no fault index; it still fails after a crash.
    pub fn flush(&mut self) -> io::Result<()> {
        self.vfs.read_guard()?;
        self.file.flush()
    }

    /// Fsyncs file data and metadata (one mutating operation).
    pub fn sync_all(&self) -> io::Result<()> {
        self.vfs.sync(&self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hyperpred-vfs-unit");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(name);
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn real_vfs_is_a_passthrough_that_counts() {
        let vfs = Vfs::real();
        let path = tmpfile("pass.txt");
        let mut f = vfs.create_new(&path).unwrap();
        f.write_all(b"hello\n").unwrap();
        f.sync_all().unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "hello\n");
        assert_eq!(vfs.ops(), 3, "create + write + sync");
        assert!(!vfs.crashed());
    }

    #[test]
    fn crash_tears_the_write_and_kills_the_handle() {
        let vfs = Vfs::faulted(FaultPlan::crash_at(2, 3));
        let path = tmpfile("crash.txt");
        let mut f = vfs.create_new(&path).unwrap(); // op 0
        f.write_all(b"first\n").unwrap(); // op 1
        let err = f.write_all(b"second\n").unwrap_err(); // op 2: crash
        assert!(err.to_string().contains("crash"), "{err}");
        assert!(vfs.crashed());
        // Completed writes survive; the in-flight one kept 3 bytes.
        assert_eq!(fs::read_to_string(&path).unwrap(), "first\nsec");
        // Everything after the crash fails, reads included.
        assert!(f.write_all(b"more").is_err());
        assert!(vfs.read_to_string(&path).is_err());
        assert!(vfs.remove_file(&path).is_err());
    }

    #[test]
    fn torn_and_short_writes_error_but_handle_survives() {
        let vfs = Vfs::faulted(
            FaultPlan::new()
                .at(1, Fault::Torn { keep: 2 })
                .at(2, Fault::Short { keep: 0 }),
        );
        let path = tmpfile("torn.txt");
        let mut f = vfs.create_new(&path).unwrap(); // op 0
        assert!(f.write_all(b"abcdef").is_err()); // op 1: torn at 2
        let err = f.write_all(b"ghi").unwrap_err(); // op 2: short, 0 bytes
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        f.write_all(b"tail").unwrap(); // op 3: healthy again
        assert_eq!(fs::read_to_string(&path).unwrap(), "abtail");
        assert!(!vfs.crashed());
    }

    #[test]
    fn injected_errors_leave_the_file_untouched() {
        let vfs = Vfs::faulted(
            FaultPlan::new()
                .at(1, Fault::Err(io::ErrorKind::StorageFull))
                .at(3, Fault::FsyncFail),
        );
        let path = tmpfile("enospc.txt");
        let mut f = vfs.create_new(&path).unwrap(); // op 0
        let err = f.write_all(b"data").unwrap_err(); // op 1: ENOSPC
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.write_all(b"ok\n").unwrap(); // op 2
        assert!(f.sync_all().is_err()); // op 3: fsync fails
        f.sync_all().unwrap(); // op 4
        assert_eq!(fs::read_to_string(&path).unwrap(), "ok\n");
    }
}
