//! Hardened daemon client: bounded timeouts and retry with backoff.
//!
//! The plain [`http_call`](crate::service::http_call) helper connects
//! without a deadline and treats every failure as final — fine for
//! tests poking a known-live daemon, wrong for `bench-load` and CI
//! driving a daemon that may be starting up, draining, or freshly
//! killed. A [`Client`] wraps the same wire protocol with:
//!
//! - **connect and read/write timeouts**, so a dead peer costs bounded
//!   time instead of a hang;
//! - **bounded exponential backoff with deterministic jitter** on the
//!   retryable failures: connection refused/reset, timeouts, and HTTP
//!   503 (the daemon's connection-cap and draining answers);
//! - **per-cell retry of typed `rejected` answers** in
//!   [`Client::post_cells`] — backpressure is an invitation to retry
//!   the rejected subset, not a batch failure.
//!
//! Everything else (4xx, unparseable responses, result-count
//! mismatches) is surfaced immediately as [`ClientError::Fatal`]:
//! retrying a protocol error only hides a broken daemon.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::journal::fnv64;
use crate::matrix::CellRequest;
use crate::service::{
    batch_to_json, http_call_timeout, parse_batch_response, CellResponse, CellStatus,
};

/// Tuning for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for reading (and writing) the response.
    pub read_timeout: Duration,
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub backoff_max: Duration,
    /// Seed for the deterministic jitter added to each backoff (vary it
    /// per worker to de-synchronize a fleet; any fixed value keeps a
    /// test reproducible).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addr: "127.0.0.1:7199".to_string(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            max_attempts: 4,
            backoff: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

/// Why a [`Client`] call gave up.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed retryably (refused/reset/timeout/503).
    Exhausted {
        /// Attempts spent before giving up.
        attempts: u32,
        /// The last failure, rendered.
        last: String,
    },
    /// A non-retryable error: protocol damage or an unexpected HTTP
    /// status — retrying would only hide it.
    Fatal(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            ClientError::Fatal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> io::Error {
        match e {
            ClientError::Fatal(e) => e,
            other => io::Error::other(other.to_string()),
        }
    }
}

/// True for transport failures worth retrying: the peer was absent,
/// went away mid-exchange, or a deadline fired. `WouldBlock` is what a
/// Unix read timeout surfaces as.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// A retrying daemon client. Cheap to construct; holds no connection
/// (the protocol is one request per connection).
#[derive(Debug)]
pub struct Client {
    cfg: ClientConfig,
    retries: AtomicU64,
}

impl Client {
    /// Builds a client for `cfg.addr`.
    pub fn new(cfg: ClientConfig) -> Client {
        Client {
            cfg,
            retries: AtomicU64::new(0),
        }
    }

    /// Retry rounds spent so far (transport retries plus rejected-cell
    /// re-posts), for reports and tests.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Backoff before attempt `attempt` (2, 3, ...): exponential from
    /// the base, capped, plus up to 50% deterministic jitter.
    fn delay(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(2).min(16);
        let base = self
            .cfg
            .backoff
            .saturating_mul(1u32 << exp)
            .min(self.cfg.backoff_max);
        let base_ms = base.as_millis().max(1) as u64;
        let mut key = [0u8; 12];
        key[..8].copy_from_slice(&self.cfg.jitter_seed.to_le_bytes());
        key[8..].copy_from_slice(&attempt.to_le_bytes());
        let jitter_ms = fnv64(&key) % (base_ms / 2 + 1);
        base + Duration::from_millis(jitter_ms)
    }

    fn note_retry(&self, attempt: u32) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay(attempt));
    }

    /// One HTTP exchange with retry/backoff on retryable transport
    /// errors and 503 answers. Any other status is returned to the
    /// caller (it is an *answer*, not a failure).
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] when every attempt failed retryably;
    /// [`ClientError::Fatal`] on protocol damage.
    pub fn call(&self, method: &str, path: &str, body: &str) -> Result<(u16, String), ClientError> {
        let attempts = self.cfg.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.note_retry(attempt);
            }
            match http_call_timeout(
                &self.cfg.addr,
                method,
                path,
                body,
                self.cfg.connect_timeout,
                self.cfg.read_timeout,
            ) {
                Ok((503, body)) => {
                    last = format!("HTTP 503: {}", body.trim());
                }
                Ok(answer) => return Ok(answer),
                Err(e) if retryable(&e) => last = e.to_string(),
                Err(e) => return Err(ClientError::Fatal(e)),
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// `GET path`.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn get(&self, path: &str) -> Result<(u16, String), ClientError> {
        self.call("GET", path, "")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn post(&self, path: &str, body: &str) -> Result<(u16, String), ClientError> {
        self.call("POST", path, body)
    }

    /// Posts `reqs` to `/v1/cells`, retrying the *rejected subset* with
    /// backoff until everything has a terminal answer or the attempt
    /// budget runs out (remaining cells keep their last `rejected`
    /// answer — still a typed response, never a hole). The returned
    /// vector is aligned with `reqs`.
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] when the daemon was unreachable;
    /// [`ClientError::Fatal`] on a non-200 answer or protocol damage.
    pub fn post_cells(&self, reqs: &[CellRequest]) -> Result<Vec<CellResponse>, ClientError> {
        let mut out: Vec<Option<CellResponse>> = vec![None; reqs.len()];
        let mut pending: Vec<usize> = (0..reqs.len()).collect();
        let rounds = self.cfg.max_attempts.max(1);
        for round in 1..=rounds {
            if round > 1 {
                self.note_retry(round);
            }
            let batch: Vec<CellRequest> = pending.iter().map(|&i| reqs[i].clone()).collect();
            let (status, body) = self.post("/v1/cells", &batch_to_json(&batch))?;
            if status != 200 {
                return Err(ClientError::Fatal(io::Error::other(format!(
                    "daemon answered HTTP {status}: {body}"
                ))));
            }
            let resps = parse_batch_response(&body)
                .map_err(|e| ClientError::Fatal(io::Error::new(io::ErrorKind::InvalidData, e)))?;
            if resps.len() != batch.len() {
                return Err(ClientError::Fatal(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("sent {} cells, got {} results", batch.len(), resps.len()),
                )));
            }
            let mut still = Vec::new();
            for (&slot, resp) in pending.iter().zip(resps) {
                if resp.status == CellStatus::Rejected && round < rounds {
                    still.push(slot);
                }
                out[slot] = Some(resp);
            }
            if still.is_empty() {
                break;
            }
            pending = still;
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every request slot gets an answer"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    /// Binds and immediately drops a listener to find a port that is
    /// almost certainly closed.
    fn closed_port_addr() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        addr
    }

    #[test]
    fn refused_connection_is_retried_then_typed() {
        let client = Client::new(ClientConfig {
            addr: closed_port_addr(),
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            backoff_max: Duration::from_millis(40),
            ..ClientConfig::default()
        });
        let started = Instant::now();
        let err = client.get("/healthz").expect_err("nobody listening");
        match err {
            ClientError::Exhausted { attempts, ref last } => {
                assert_eq!(attempts, 3);
                assert!(!last.is_empty());
            }
            ClientError::Fatal(e) => panic!("refused must be retryable, got {e}"),
        }
        assert_eq!(client.retries(), 2, "two retry rounds for three attempts");
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "backoff must actually wait"
        );
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let client = Client::new(ClientConfig {
            backoff: Duration::from_millis(100),
            backoff_max: Duration::from_millis(400),
            jitter_seed: 7,
            ..ClientConfig::default()
        });
        let d2 = client.delay(2);
        let d3 = client.delay(3);
        let d5 = client.delay(5);
        assert!(d2 >= Duration::from_millis(100) && d2 <= Duration::from_millis(150));
        assert!(d3 >= Duration::from_millis(200) && d3 <= Duration::from_millis(300));
        assert!(
            d5 <= Duration::from_millis(600),
            "capped at backoff_max + 50% jitter, got {d5:?}"
        );
        assert_eq!(client.delay(2), d2, "jitter is deterministic");
    }
}
