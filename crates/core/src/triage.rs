//! Failure triage: self-contained repro bundles and a delta-debugging
//! minimizer for permanently failed matrix cells.
//!
//! When a cell exhausts its retries, the engine (given a [`TriageConfig`])
//! emits a *repro bundle*: a directory holding everything needed to
//! replay the failure on another machine with nothing but this repo —
//!
//! * `cell.json` — the cell's exact configuration (workload, model,
//!   machine and simulation parameters, fault-injection flag), the
//!   failure stage, the normalized *signature*, and the full payload;
//! * `workload.c` — the MiniC source (replay recompiles from source:
//!   the IR text dump does not carry global initializers, so source is
//!   the only self-contained input);
//! * `ir.txt` — the lowered, scheduled IR via [`hyperpred_ir`]'s printer,
//!   when compilation got far enough to produce a module;
//! * `minimized.txt` / `minimized.c` + `minimize.json` — the greedy
//!   delta-debugged reduction, when minimization applies (see below).
//!
//! `hyperpredc repro <bundle>` replays a bundle and compares signatures:
//! exit 1 when the same failure reproduces, 0 when the cell now passes,
//! 3 when it fails differently.
//!
//! # Signatures
//!
//! A signature is a short, stable normalization of a failure — stable
//! across replays and across minimization steps, which means it must
//! exclude anything incidental: instruction counts, source locations,
//! concrete trap addresses, diverging return values. Two failures with
//! the same signature are treated as the same bug.
//!
//! # Minimization
//!
//! The minimizer is greedy delta debugging over the failing program:
//! for simulate-stage failures it operates on the compiled [`Module`]
//! in memory (drop a block from a function's layout, then drop single
//! instructions, keeping each removal iff the replayed signature is
//! unchanged); for compile-stage failures, where no module exists, it
//! drops source lines the same way. Budget failures (`sim: cycle-limit`,
//! `sim: deadline`) are not minimized — every probe would cost a full
//! budget's worth of simulation, and a smaller program usually stops
//! tripping the budget anyway.

use crate::faults;
use crate::journal::{escape, field_str, field_u64};
use crate::matrix::{catch_cell, FailurePayload, FailureStage};
use crate::pipeline::{Model, Pipeline, PipelineError, Stage};
use hyperpred_ir::Module;
use hyperpred_lang::lower::entry_args;
use hyperpred_sched::MachineConfig;
use hyperpred_sim::{simulate, CacheConfig, MemoryModel, SimConfig, SimError, SimStats};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Schema version stamped into `cell.json` and `minimize.json`.
pub const BUNDLE_VERSION: u64 = 1;

/// Upper bound on minimizer replays per bundle, so triage of a large
/// failing program stays bounded.
const MAX_PROBES: usize = 4096;

/// Where (and whether) the engine emits repro bundles.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Directory bundles are created under (one subdirectory per cell).
    pub dir: PathBuf,
    /// Run the delta-debugging minimizer on each bundle.
    pub minimize: bool,
}

impl TriageConfig {
    /// Bundles under `dir`, with minimization on.
    pub fn new(dir: impl Into<PathBuf>) -> TriageConfig {
        TriageConfig {
            dir: dir.into(),
            minimize: true,
        }
    }
}

/// Everything `hyperpredc repro` needs to replay one cell, as stored in
/// (and parsed back from) `cell.json`.
#[derive(Debug, Clone)]
pub struct ReproCell {
    /// Workload name.
    pub workload: String,
    /// Workload arguments.
    pub args: Vec<i64>,
    /// Figure title, or `"baseline"` for the shared denominator cell.
    pub experiment: String,
    /// Model of the failed cell (`None` for the baseline cell).
    pub model: Option<Model>,
    /// Issue width of the simulated machine.
    pub issue: u32,
    /// Branch slots per cycle.
    pub branches: u32,
    /// Memory model (cache geometry is the default one; the experiment
    /// layer never uses another).
    pub memory: MemoryModel,
    /// Cycle budget the cell ran under.
    pub max_cycles: u64,
    /// Whether fault-injection markers were honored.
    pub fault_injection: bool,
    /// Chaos sabotage applied after this pass, if any (soak's sabotage
    /// mode records it so replay rebreaks the build the same way).
    pub sabotage: Option<Stage>,
    /// Stage the failure occurred in.
    pub stage: FailureStage,
    /// Normalized failure signature (see [`signature`]).
    pub signature: String,
    /// Config fingerprint (matches the run journal's key).
    pub fingerprint: String,
    /// Attempts spent before the failure became permanent.
    pub attempts: u32,
}

/// A loaded repro bundle.
#[derive(Debug)]
pub struct Bundle {
    /// Directory the bundle lives in.
    pub dir: PathBuf,
    /// The parsed cell configuration.
    pub cell: ReproCell,
    /// The workload source.
    pub source: String,
}

// ---------------------------------------------------------------------------
// Signatures
// ---------------------------------------------------------------------------

/// Normalizes a failure payload into a stable signature: the same bug
/// replayed (or minimized) yields the same string, while incidental
/// detail — instruction counts, panic locations, trap addresses,
/// diverging values — is stripped.
pub fn signature(payload: &FailurePayload) -> String {
    match payload {
        FailurePayload::Panic(msg) => {
            // Captured panics carry " (at file:line:col) [cell ...]";
            // keep only the message proper.
            let msg = msg.split(" (at ").next().unwrap_or(msg);
            format!("panic: {msg}")
        }
        FailurePayload::Error(e) => signature_of_error(e),
    }
}

fn signature_of_error(e: &PipelineError) -> String {
    match e {
        PipelineError::Compile(c) => format!("compile: {c}"),
        PipelineError::Emu(e) => format!("emulate: {}", emu_kind(e)),
        PipelineError::Sim(SimError::CycleLimit { .. }) => "sim: cycle-limit".to_string(),
        PipelineError::Sim(SimError::Deadline { .. }) => "sim: deadline".to_string(),
        PipelineError::Sim(SimError::Emu(e)) => format!("emulate: {}", emu_kind(e)),
        PipelineError::Lint(l) => format!("lint: after pass `{}`", l.pass),
        PipelineError::Sched(s) => format!("sched: {}", s.func),
        // value/limit are excluded on purpose: minimization changes the
        // concrete counts while the bug (this pass blows its budget)
        // persists.
        PipelineError::Budget { pass, metric, .. } => {
            format!("budget: {} {metric}", pass.name())
        }
        // got/want are excluded on purpose: minimization changes the
        // concrete values while the bug (this model diverges) persists.
        PipelineError::Diverged { model, .. } => format!("diverged: {model}"),
        // detail is excluded for the same reason; `check` is stable.
        PipelineError::Oracle { check, .. } => format!("oracle: {check}"),
    }
}

fn emu_kind(e: &hyperpred_emu::EmuError) -> &'static str {
    use hyperpred_emu::EmuError;
    match e {
        EmuError::Trap { .. } => "trap",
        EmuError::DivByZero { .. } => "div-by-zero",
        EmuError::OutOfFuel { .. } => "out-of-fuel",
        EmuError::CallDepth { .. } => "call-depth",
        EmuError::Malformed { .. } => "malformed",
        EmuError::SinkAbort { .. } => "sink-abort",
        EmuError::NoFunc(_) => "no-func",
        EmuError::BadGlobal(_) => "bad-global",
    }
}

/// Whether the minimizer should run for this signature. Budget failures
/// are excluded: each probe would simulate a full budget, and shrinking
/// the program changes the very thing that trips it.
pub fn minimizable(sig: &str) -> bool {
    sig != "sim: cycle-limit" && sig != "sim: deadline"
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

fn machine_of(cell: &ReproCell) -> MachineConfig {
    MachineConfig::new(cell.issue.max(1), cell.branches.max(1))
}

fn sim_of(cell: &ReproCell) -> SimConfig {
    SimConfig {
        memory: cell.memory,
        max_cycles: cell.max_cycles,
        ..SimConfig::default()
    }
}

fn pipe_of(cell: &ReproCell) -> Pipeline {
    Pipeline {
        fault_injection: cell.fault_injection,
        sabotage: cell.sabotage,
        ..Pipeline::default()
    }
}

/// Replays one cell from source exactly as the matrix engine runs it:
/// compile, (optionally) trip the simulate-stage injection point, then
/// the timing simulation. Returns the failure signature, or `None` when
/// the cell completes — for a cell recorded as diverged, "completes"
/// additionally means the model's result matches a fresh baseline run.
pub fn replay(cell: &ReproCell, source: &str) -> Option<String> {
    // Soak cells replay through the soak battery itself: their failure
    // may live in a cross-model or decoded-vs-reference oracle that a
    // plain compile+simulate replay can never reproduce — and soak
    // compiles with the degradation ladder, so its budget failures are
    // the *permanent* ones, not the first budget a plain compile trips.
    if cell.experiment == crate::soak::SOAK_EXPERIMENT {
        return crate::soak::replay_cell(cell, source);
    }
    let pipe = pipe_of(cell);
    let machine = machine_of(cell);
    let sim_cfg = sim_of(cell);
    let model = cell.model.unwrap_or(Model::Superblock);
    let caught = catch_cell(|| -> Result<SimStats, PipelineError> {
        let module = pipe.compile(source, &cell.args, model, &machine)?;
        if pipe.fault_injection {
            faults::maybe_injected_sim_panic(&module);
        }
        let stats = simulate(&module, "main", &entry_args(&cell.args), machine, sim_cfg)?;
        Ok(stats)
    });
    let stats = match caught {
        Err(panic_msg) => return Some(signature(&FailurePayload::Panic(panic_msg))),
        Ok(Err(e)) => return Some(signature(&FailurePayload::Error(e))),
        Ok(Ok(stats)) => stats,
    };
    if cell.signature.starts_with("diverged:") {
        if let Some(model) = cell.model {
            let base = catch_cell(|| -> Result<SimStats, PipelineError> {
                let module = pipe.compile(
                    source,
                    &cell.args,
                    Model::Superblock,
                    &MachineConfig::one_issue(),
                )?;
                let base_sim = SimConfig {
                    memory: MemoryModel::Perfect,
                    max_cycles: cell.max_cycles,
                    ..SimConfig::default()
                };
                Ok(simulate(
                    &module,
                    "main",
                    &entry_args(&cell.args),
                    MachineConfig::one_issue(),
                    base_sim,
                )?)
            });
            if let Ok(Ok(base)) = base {
                if base.ret != stats.ret {
                    return Some(format!("diverged: {model}"));
                }
            }
        }
    }
    None
}

/// Replays an already-compiled module (the simulate half only): the
/// injection point, then the timing simulation. Used by the module-level
/// minimizer, whose candidates exist only in memory.
fn replay_module(cell: &ReproCell, module: &Module) -> Option<String> {
    let machine = machine_of(cell);
    let sim_cfg = sim_of(cell);
    let caught = catch_cell(|| -> Result<SimStats, SimError> {
        if cell.fault_injection {
            faults::maybe_injected_sim_panic(module);
        }
        simulate(module, "main", &entry_args(&cell.args), machine, sim_cfg)
    });
    match caught {
        Err(panic_msg) => Some(signature(&FailurePayload::Panic(panic_msg))),
        Ok(Err(e)) => Some(signature(&FailurePayload::Error(e.into()))),
        Ok(Ok(_)) => None,
    }
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

/// Result of module-level minimization.
#[derive(Debug)]
pub struct MinimizedModule {
    /// The shrunken module (same failure signature as the original).
    pub module: Module,
    /// Total laid-out instructions before.
    pub original_insts: usize,
    /// Total laid-out instructions after.
    pub minimized_insts: usize,
    /// The preserved failure signature.
    pub signature: String,
}

fn module_insts(m: &Module) -> usize {
    m.funcs.iter().map(hyperpred_ir::Function::size).sum()
}

/// Greedy delta debugging on a compiled module: first drop whole blocks
/// from each function's layout, then single instructions, keeping each
/// removal iff the replayed failure signature is unchanged. Returns
/// `None` when the original module does not fail to begin with.
pub fn minimize_module(cell: &ReproCell, module: &Module) -> Option<MinimizedModule> {
    let target = replay_module(cell, module)?;
    let mut best = module.clone();
    let mut probes = 0usize;
    let mut shrunk = true;
    while shrunk && probes < MAX_PROBES {
        shrunk = false;
        // Pass 1: drop non-entry blocks from layouts.
        for f in 0..best.funcs.len() {
            let mut i = 1; // layout[0] is the entry; never dropped
            while i < best.funcs[f].layout.len() && probes < MAX_PROBES {
                let mut cand = best.clone();
                cand.funcs[f].layout.remove(i);
                probes += 1;
                if replay_module(cell, &cand).as_deref() == Some(&target) {
                    best = cand;
                    shrunk = true;
                } else {
                    i += 1;
                }
            }
        }
        // Pass 2: drop single instructions from laid-out blocks.
        for f in 0..best.funcs.len() {
            for li in 0..best.funcs[f].layout.len() {
                let b = best.funcs[f].layout[li];
                let mut j = 0;
                while j < best.funcs[f].block(b).insts.len() && probes < MAX_PROBES {
                    let mut cand = best.clone();
                    cand.funcs[f].block_mut(b).insts.remove(j);
                    probes += 1;
                    if replay_module(cell, &cand).as_deref() == Some(&target) {
                        best = cand;
                        shrunk = true;
                    } else {
                        j += 1;
                    }
                }
            }
        }
    }
    Some(MinimizedModule {
        original_insts: module_insts(module),
        minimized_insts: module_insts(&best),
        module: best,
        signature: target,
    })
}

/// Result of source-level minimization.
#[derive(Debug)]
pub struct MinimizedSource {
    /// The shrunken source (same failure signature as the original).
    pub source: String,
    /// Source lines before.
    pub original_lines: usize,
    /// Source lines after.
    pub minimized_lines: usize,
    /// The preserved failure signature.
    pub signature: String,
}

/// The index of the line that closes the brace block opened on
/// `lines[i]`, when that line leaves net brace depth positive (an `if`,
/// loop, or function header). Lines that don't open a block — or whose
/// block never closes — yield `None`.
fn block_end(lines: &[&str], i: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, line) in lines.iter().enumerate().skip(i) {
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if j == i && depth <= 0 {
            return None; // opens nothing (or is self-contained)
        }
        if depth <= 0 {
            return Some(j);
        }
    }
    None
}

/// Greedy delta debugging on MiniC source, for failures with no compiled
/// module (compile-stage panics and errors). Two passes: first drop
/// whole brace-delimited chunks (a statement opening a block through its
/// matching close — removes an `if`/loop/function in one probe instead
/// of leaving unbalanced braces behind), then single lines. Each removal
/// is kept iff the replayed signature is unchanged. Returns `None` when
/// the original source does not fail.
pub fn minimize_source(cell: &ReproCell, source: &str) -> Option<MinimizedSource> {
    let target = replay(cell, source)?;
    let original_lines = source.lines().count();
    let mut lines: Vec<&str> = source.lines().collect();
    let mut probes = 0usize;
    // Pass 1: brace-aware chunks.
    let mut i = 0;
    while i < lines.len() && probes < MAX_PROBES {
        if let Some(end) = block_end(&lines, i) {
            let mut cand = lines.clone();
            cand.drain(i..=end);
            probes += 1;
            if replay(cell, &cand.join("\n")).as_deref() == Some(&target) {
                lines.drain(i..=end);
                continue; // a new chunk may now start at i
            }
        }
        i += 1;
    }
    // Pass 2: single lines.
    let mut i = 0;
    while i < lines.len() && probes < MAX_PROBES {
        let mut cand = lines.clone();
        cand.remove(i);
        probes += 1;
        if replay(cell, &cand.join("\n")).as_deref() == Some(&target) {
            lines.remove(i);
        } else {
            i += 1;
        }
    }
    Some(MinimizedSource {
        source: lines.join("\n"),
        original_lines,
        minimized_lines: lines.len(),
        signature: target,
    })
}

// ---------------------------------------------------------------------------
// Bundle I/O
// ---------------------------------------------------------------------------

/// Filesystem-safe slug: alphanumerics kept, everything else `-`,
/// truncated so directory names stay reasonable.
fn slug(s: &str, max: usize) -> String {
    let mut out = String::with_capacity(max);
    for c in s.chars() {
        if out.len() >= max {
            break;
        }
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// The bundle directory for a cell, under the triage root.
pub fn bundle_dir(root: &Path, cell: &ReproCell) -> PathBuf {
    root.join(format!(
        "{}-{}-{}",
        slug(&cell.workload, 24),
        slug(&cell.experiment, 24),
        crate::journal::model_slug(cell.model),
    ))
}

fn cell_json(cell: &ReproCell, payload_text: &str) -> String {
    let args = cell
        .args
        .iter()
        .map(i64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let memory = match cell.memory {
        MemoryModel::Perfect => "perfect",
        MemoryModel::Caches(_) => "caches",
    };
    format!(
        "{{\n  \"version\": {BUNDLE_VERSION},\n  \"fingerprint\": \"{}\",\n  \
         \"workload\": \"{}\",\n  \"experiment\": \"{}\",\n  \"model\": \"{}\",\n  \
         \"args\": \"{}\",\n  \"issue\": {},\n  \"branches\": {},\n  \
         \"memory\": \"{}\",\n  \"max_cycles\": {},\n  \"fault_injection\": {},\n  \
         \"sabotage\": \"{}\",\n  \
         \"stage\": \"{}\",\n  \"attempts\": {},\n  \"signature\": \"{}\",\n  \
         \"payload\": \"{}\"\n}}\n",
        escape(&cell.fingerprint),
        escape(&cell.workload),
        escape(&cell.experiment),
        crate::journal::model_slug(cell.model),
        args,
        cell.issue,
        cell.branches,
        memory,
        cell.max_cycles,
        cell.fault_injection,
        cell.sabotage.map_or("none", Stage::name),
        cell.stage,
        cell.attempts,
        escape(&cell.signature),
        escape(payload_text),
    )
}

fn parse_stage(s: &str) -> FailureStage {
    match s {
        "compile" => FailureStage::Compile,
        "emulate" => FailureStage::Emulate,
        _ => FailureStage::Simulate,
    }
}

fn parse_model(s: &str) -> Option<Model> {
    match s {
        "superblock" => Some(Model::Superblock),
        "condmove" => Some(Model::CondMove),
        "fullpred" => Some(Model::FullPred),
        _ => None, // "baseline"
    }
}

fn parse_cell_json(json: &str) -> Result<ReproCell, String> {
    let version = field_u64(json, "version").ok_or("cell.json: missing version")?;
    if version != BUNDLE_VERSION {
        return Err(format!(
            "cell.json: bundle version {version} != supported {BUNDLE_VERSION}"
        ));
    }
    let need = |key: &str| field_str(json, key).ok_or(format!("cell.json: missing {key}"));
    let args_text = need("args")?;
    let args = args_text
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("cell.json: bad arg `{s}`")))
        .collect::<Result<Vec<i64>, String>>()?;
    let memory = match need("memory")?.as_str() {
        "caches" => MemoryModel::Caches(CacheConfig::default()),
        _ => MemoryModel::Perfect,
    };
    Ok(ReproCell {
        workload: need("workload")?,
        args,
        experiment: need("experiment")?,
        model: parse_model(&need("model")?),
        issue: field_u64(json, "issue").ok_or("cell.json: missing issue")? as u32,
        branches: field_u64(json, "branches").ok_or("cell.json: missing branches")? as u32,
        memory,
        max_cycles: field_u64(json, "max_cycles").ok_or("cell.json: missing max_cycles")?,
        fault_injection: json.contains("\"fault_injection\": true"),
        // "none", a garbled value, and a missing key (pre-soak bundles)
        // all read back as no sabotage.
        sabotage: field_str(json, "sabotage").and_then(|s| s.parse().ok()),
        stage: parse_stage(&need("stage")?),
        signature: need("signature")?,
        fingerprint: need("fingerprint")?,
        attempts: field_u64(json, "attempts").unwrap_or(1) as u32,
    })
}

/// Writes one repro bundle. `module` is the compiled module when the
/// failure happened after compilation (its IR is dumped, and module-level
/// minimization applies); `source` is always stored, because replay
/// recompiles from source.
///
/// # Errors
/// Fails on I/O errors only; minimization failures degrade to "no
/// minimized artifact", never to a write error.
pub fn write_bundle(
    cfg: &TriageConfig,
    cell: &ReproCell,
    source: &str,
    payload_text: &str,
    module: Option<&Module>,
) -> io::Result<PathBuf> {
    let dir = bundle_dir(&cfg.dir, cell);
    std::fs::create_dir_all(&dir)?;
    write_file(&dir.join("cell.json"), &cell_json(cell, payload_text))?;
    write_file(&dir.join("workload.c"), source)?;
    if let Some(m) = module {
        write_file(&dir.join("ir.txt"), &format!("{m}"))?;
    }
    if cfg.minimize && minimizable(&cell.signature) {
        if let Some(m) = module {
            if let Some(min) = minimize_module(cell, m) {
                write_file(&dir.join("minimized.txt"), &format!("{}", min.module))?;
                write_file(
                    &dir.join("minimize.json"),
                    &format!(
                        "{{\"version\": {BUNDLE_VERSION}, \"kind\": \"module\", \
                         \"original_insts\": {}, \"minimized_insts\": {}, \
                         \"signature\": \"{}\"}}\n",
                        min.original_insts,
                        min.minimized_insts,
                        escape(&min.signature)
                    ),
                )?;
            }
        }
        // Source-level minimization runs regardless of whether a module
        // exists: `minimized.c` is the artifact a human reads, and the
        // only one that replays end-to-end from nothing but the bundle.
        if let Some(min) = minimize_source(cell, source) {
            write_file(&dir.join("minimized.c"), &min.source)?;
            if module.is_none() {
                write_file(
                    &dir.join("minimize.json"),
                    &format!(
                        "{{\"version\": {BUNDLE_VERSION}, \"kind\": \"source\", \
                         \"original_lines\": {}, \"minimized_lines\": {}, \
                         \"signature\": \"{}\"}}\n",
                        min.original_lines,
                        min.minimized_lines,
                        escape(&min.signature)
                    ),
                )?;
            }
        }
    }
    Ok(dir)
}

fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents.as_bytes())
}

/// Loads a bundle directory written by [`write_bundle`].
///
/// # Errors
/// Fails with a human-readable message when `cell.json` or `workload.c`
/// is missing or malformed.
pub fn load_bundle(dir: impl AsRef<Path>) -> Result<Bundle, String> {
    let dir = dir.as_ref().to_path_buf();
    let json = std::fs::read_to_string(dir.join("cell.json"))
        .map_err(|e| format!("{}: cannot read cell.json: {e}", dir.display()))?;
    let cell = parse_cell_json(&json)?;
    let source = std::fs::read_to_string(dir.join("workload.c"))
        .map_err(|e| format!("{}: cannot read workload.c: {e}", dir.display()))?;
    Ok(Bundle { dir, cell, source })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(signature: &str) -> ReproCell {
        ReproCell {
            workload: "inject-panic".to_string(),
            args: vec![3, -4],
            experiment: "Figure 8: 8-issue, 1-branch, perfect caches".to_string(),
            model: Some(Model::FullPred),
            issue: 8,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: 2_000_000,
            fault_injection: true,
            sabotage: Some(crate::pipeline::Stage::Promote),
            stage: FailureStage::Compile,
            signature: signature.to_string(),
            fingerprint: "abc123".to_string(),
            attempts: 2,
        }
    }

    #[test]
    fn signatures_strip_incidental_detail() {
        let p = FailurePayload::Panic(
            "boom happened (at crates/core/src/x.rs:1:2) [cell wc / Figure 8 / Full Pred.]"
                .to_string(),
        );
        assert_eq!(signature(&p), "panic: boom happened");
        let e = FailurePayload::Error(PipelineError::Sim(SimError::CycleLimit {
            limit: 99,
            insts: 1234,
        }));
        assert_eq!(signature(&e), "sim: cycle-limit");
        let d = FailurePayload::Error(PipelineError::Diverged {
            workload: "w".to_string(),
            model: Model::FullPred,
            got: 1,
            want: 2,
        });
        assert_eq!(signature(&d), "diverged: Full Pred.");
        assert!(!minimizable("sim: cycle-limit"));
        assert!(!minimizable("sim: deadline"));
        assert!(minimizable("panic: boom"));
    }

    #[test]
    fn cell_json_round_trips() {
        let c = cell("panic: injected compile-stage panic");
        let json = cell_json(&c, "panic: full text with \"quotes\"");
        let back = parse_cell_json(&json).expect("parses");
        assert_eq!(back.workload, c.workload);
        assert_eq!(back.args, c.args);
        assert_eq!(back.experiment, c.experiment);
        assert_eq!(back.model, c.model);
        assert_eq!(back.issue, c.issue);
        assert_eq!(back.branches, c.branches);
        assert_eq!(back.max_cycles, c.max_cycles);
        assert!(back.fault_injection);
        assert_eq!(back.sabotage, c.sabotage);
        assert_eq!(back.stage, c.stage);
        // Pre-soak bundles have no sabotage key at all.
        let legacy = json.replace("  \"sabotage\": \"promote\",\n", "");
        assert_eq!(parse_cell_json(&legacy).expect("parses").sabotage, None);
        assert_eq!(back.signature, c.signature);
        assert_eq!(back.fingerprint, c.fingerprint);
        assert_eq!(back.attempts, 2);
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(
            slug("Figure 8: 8-issue, 1-branch, perfect caches", 24),
            "figure-8-8-issue-1-branc"
        );
        assert_eq!(slug("inject-panic", 24), "inject-panic");
    }
}
