//! `hyperpredc` — command-line driver: compile a MiniC file under any of
//! the paper's three models and run/simulate/dump it.
//!
//! ```text
//! hyperpredc run  prog.c --model full --issue 8 --branches 1 [--args 1,2,3]
//! hyperpredc sim  prog.c --model all  --issue 8 --caches
//! hyperpredc dump prog.c --model cmov
//! hyperpredc report [--threads N] [--scale test|full] [--verbose] [--keep-going]
//! ```
//!
//! `report` regenerates the paper's whole figure matrix (Figures 8-11 and
//! Tables 2-3) through the parallel experiment engine, printing per-run
//! cache and wall-time counters. With `--keep-going` the engine contains
//! per-cell failures: the tables render every healthy cell, a failure
//! summary goes to stderr, and the exit code is nonzero iff any cell
//! failed.

use hyperpred::emu::{Emulator, NullSink};
use hyperpred::lang::lower::entry_args;
use hyperpred::sched::MachineConfig;
use hyperpred::sim::{CacheConfig, MemoryModel, SimConfig};
use hyperpred::workloads::Scale;
use hyperpred::{
    branch_table, instruction_table, run_matrix_policy, run_matrix_with_stats, speedup_table,
    BenchResult, EngineStats, Experiment, FailurePolicy,
};
use hyperpred::{evaluate, speedup, Model, Pipeline};
use std::process::ExitCode;

struct Options {
    command: String,
    file: String,
    models: Vec<Model>,
    issue: u32,
    branches: u32,
    caches: bool,
    args: Vec<i64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hyperpredc <run|sim|dump> <file.c> \
         [--model sup|cmov|full|all] [--issue K] [--branches B] [--caches] [--args a,b,c]\n\
         \x20      hyperpredc report [--threads N] [--scale test|full] [--verbose] [--keep-going]"
    );
    ExitCode::from(2)
}

/// Runs the paper's full experiment matrix through the parallel engine.
fn report(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut threads = 0usize;
    let mut scale = Scale::Full;
    let mut verbose = false;
    let mut keep_going = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                threads = n;
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    _ => return usage(),
                };
            }
            "--verbose" => verbose = true,
            "--keep-going" => keep_going = true,
            _ => return usage(),
        }
    }
    let exps = [
        Experiment::fig8(),
        Experiment::fig9(),
        Experiment::fig10(),
        Experiment::fig11(),
    ];
    let mut any_failed = false;
    let (figures, stats): (Vec<Vec<BenchResult>>, EngineStats) = if keep_going {
        let run = run_matrix_policy(
            &exps,
            scale,
            &Pipeline::default(),
            threads,
            FailurePolicy::KeepGoing,
        );
        if !run.report.is_empty() {
            any_failed = true;
            eprint!("{}", run.report);
        }
        let figures = run
            .outcomes
            .iter()
            .map(|row| row.iter().filter_map(|o| o.ok().cloned()).collect())
            .collect();
        (figures, run.stats)
    } else {
        match run_matrix_with_stats(&exps, scale, &Pipeline::default(), threads) {
            Ok(out) => (out.figures, out.stats),
            Err(e) => {
                eprintln!("hyperpredc: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    for (exp, results) in exps.iter().zip(&figures) {
        println!("{}", speedup_table(exp, results));
    }
    println!("{}", instruction_table(&figures[0]));
    println!("{}", branch_table(&figures[0]));
    eprintln!("{}", stats.summary());
    if verbose {
        for cell in &stats.cells {
            eprintln!("  {cell}");
        }
    }
    if any_failed {
        eprintln!("hyperpredc: some cells failed; tables above are partial");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or_else(usage)?;
    let file = it.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        file,
        models: vec![Model::FullPred],
        issue: 8,
        branches: 1,
        caches: false,
        args: Vec::new(),
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--model" => {
                let v = it.next().ok_or_else(usage)?;
                opts.models = match v.as_str() {
                    "sup" | "superblock" => vec![Model::Superblock],
                    "cmov" | "partial" => vec![Model::CondMove],
                    "full" => vec![Model::FullPred],
                    "all" => Model::ALL.to_vec(),
                    _ => return Err(usage()),
                };
            }
            "--issue" => {
                opts.issue = it.next().ok_or_else(usage)?.parse().map_err(|_| usage())?;
            }
            "--branches" => {
                opts.branches = it.next().ok_or_else(usage)?.parse().map_err(|_| usage())?;
            }
            "--caches" => opts.caches = true,
            "--args" => {
                let v = it.next().ok_or_else(usage)?;
                opts.args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().map_err(|_| usage()))
                    .collect::<Result<_, _>>()?;
            }
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    {
        // `report` takes no input file; dispatch it before the
        // file-oriented argument parser.
        let mut it = std::env::args().skip(1);
        if it.next().as_deref() == Some("report") {
            return report(it);
        }
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(c) => return c,
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hyperpredc: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let pipe = Pipeline::default();
    let machine = MachineConfig::new(opts.issue, opts.branches);
    let sim = SimConfig {
        memory: if opts.caches {
            MemoryModel::Caches(CacheConfig::default())
        } else {
            MemoryModel::Perfect
        },
        ..SimConfig::default()
    };

    match opts.command.as_str() {
        "dump" => {
            for model in &opts.models {
                let m = match pipe.compile(&source, &opts.args, *model, &machine) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("hyperpredc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "==== {model} (scheduled for {}-issue, {}-branch) ====",
                    opts.issue, opts.branches
                );
                print!("{m}");
            }
            ExitCode::SUCCESS
        }
        "run" => {
            for model in &opts.models {
                let m = match pipe.compile(&source, &opts.args, *model, &machine) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("hyperpredc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut emu = Emulator::new(&m);
                match emu.run("main", &entry_args(&opts.args), &mut NullSink) {
                    Ok(out) => println!(
                        "{model}: returned {} ({} instructions executed)",
                        out.ret, out.fetched
                    ),
                    Err(e) => {
                        eprintln!("hyperpredc: runtime error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "sim" => {
            let base = match evaluate(
                &source,
                &opts.args,
                Model::Superblock,
                MachineConfig::one_issue(),
                sim,
                &pipe,
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hyperpredc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "baseline (1-issue superblock): {} cycles, {} insts",
                base.cycles, base.insts
            );
            for model in &opts.models {
                match evaluate(&source, &opts.args, *model, machine, sim, &pipe) {
                    Ok(s) => println!(
                        "{model} @ {}-issue/{}-br: {} cycles, {} insts, {} branches, {} mispredicts, ipc {:.2}, speedup {:.2}",
                        opts.issue,
                        opts.branches,
                        s.cycles,
                        s.insts,
                        s.branches,
                        s.mispredicts,
                        s.ipc(),
                        speedup(&base, &s)
                    ),
                    Err(e) => {
                        eprintln!("hyperpredc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
