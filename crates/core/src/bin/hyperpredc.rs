//! `hyperpredc` — command-line driver: compile a MiniC file under any of
//! the paper's three models and run/simulate/dump it.
//!
//! ```text
//! hyperpredc run  prog.c --model full --issue 8 --branches 1 [--args 1,2,3]
//! hyperpredc sim  prog.c --model all  --issue 8 --caches
//! hyperpredc dump prog.c --model cmov
//! hyperpredc report [--threads N] [--scale test|full] [--verbose] [--keep-going]
//!                   [--resume journal.jsonl] [--retries N] [--triage DIR]
//! hyperpredc repro <bundle-dir> [--minimize]
//! hyperpredc lint <workload|all|file.c> [--model all] [--sabotage ifconvert]
//! hyperpredc analyze <workload|all|file.c> [--model full] [--scale test|full]
//!                    [--check] [--issue K] [--branches B] [--args a,b,c]
//! hyperpredc soak --seed 1 --cells 500 [--resume journal.jsonl] [--triage DIR]
//!                 [--profiles branchy,nasty] [--widths 1x1,4x1,8x2]
//!                 [--max-cells N] [--sabotage promote]
//! ```
//!
//! `report` regenerates the paper's whole figure matrix (Figures 8-11 and
//! Tables 2-3) through the parallel experiment engine, printing per-run
//! cache and wall-time counters. With `--keep-going` the engine contains
//! per-cell failures: the tables render every healthy cell, a failure
//! summary goes to stderr, and the exit code is nonzero iff any cell
//! failed. `--resume` journals every completed cell to (and reuses
//! already-journaled cells from) an append-only JSONL file, so a killed
//! run resumes where it left off; `--retries` re-runs transient failures;
//! `--triage` writes a repro bundle per permanent failure. Each of these
//! implies `--keep-going`.
//!
//! `repro` replays a triage bundle: exit 1 when the recorded failure
//! reproduces with the same signature, 0 when the cell now passes, 3 when
//! it fails differently. `--minimize` additionally delta-debugs the
//! source and writes `minimized.c` into the bundle.
//!
//! `lint` compiles with the semantic checkpoint runner forced on: after
//! every pass the IR is re-verified against the dataflow checkers
//! (def-before-use, predicate well-formedness, speculation safety, model
//! conformance), and the first offending pass is named. Exit status is
//! nonzero iff any target fails. `--sabotage <pass>` deliberately
//! corrupts the IR after the named pass — a self-test that the
//! checkpoints catch miscompiles and blame the right stage.
//!
//! `analyze` compiles each target and dumps the predicate partition
//! graph the relation analysis derives for it: per block, which
//! predicates are provably disjoint, nested (subset), known-true/false,
//! and which pairs partition their parent (Table 1 dual defines). With
//! `--check` it validates every built graph with the relation-soundness
//! checker family instead of printing — a CI canary that the analysis
//! stays closed over every workload. Exit status is nonzero iff a
//! compile or a check fails.
//!
//! `soak` generates seeded adversarial MiniC programs and runs each one
//! through the full cross-model differential oracle battery (see
//! [`hyperpred::soak`]): decoded-vs-reference emulation, cross-model
//! return values and store streams, simulator/trace consistency, and
//! per-pass lint checkpoints. `--resume` journals completed programs so
//! a killed soak picks up where it left off; `--triage` writes a
//! minimized repro bundle per failure; `--sabotage <pass>` is the
//! self-test hook that proves the oracles catch a miscompile. Exit
//! status is nonzero iff any program failed or the run was cut short by
//! `--max-cells`.

use hyperpred::emu::{Emulator, NullSink};
use hyperpred::lang::lower::entry_args;
use hyperpred::sched::MachineConfig;
use hyperpred::sim::{CacheConfig, MemoryModel, SimConfig};
use hyperpred::workloads::Scale;
use hyperpred::{
    branch_table, fsck, instruction_table, run_matrix_configured, run_matrix_with_stats,
    speedup_table, summarize_run, BenchResult, Experiment, FailurePolicy, FsckOptions,
    MatrixConfig, RetryPolicy, RunJournal, TriageConfig,
};
use hyperpred::{evaluate, speedup, Model, Pipeline, PipelineError, Stage};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    command: String,
    file: String,
    models: Vec<Model>,
    issue: u32,
    branches: u32,
    caches: bool,
    args: Vec<i64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hyperpredc <run|sim|dump> <file.c> \
         [--model sup|cmov|full|all] [--issue K] [--branches B] [--caches] [--args a,b,c]\n\
         \x20      hyperpredc report [--threads N] [--scale test|full] [--verbose] [--keep-going] \
         [--resume journal.jsonl] [--retries N] [--triage DIR]\n\
         \x20      hyperpredc repro <bundle-dir> [--minimize]\n\
         \x20      hyperpredc lint <workload|all|file.c> [--model sup|cmov|full|all] \
         [--scale test|full] [--sabotage <pass>] [--issue K] [--branches B] [--args a,b,c]\n\
         \x20      hyperpredc analyze <workload|all|file.c> [--model sup|cmov|full|all] \
         [--scale test|full] [--check] [--issue K] [--branches B] [--args a,b,c]\n\
         \x20      hyperpredc soak --seed S --cells N [--resume journal.jsonl] [--triage DIR] \
         [--profiles p,q] [--widths IxB,...] [--max-cells N] [--sabotage <pass>] \
         [--max-cycles N] [--fuel N]\n\
         \x20      hyperpredc bench-load [--addr HOST:PORT] [--cells N] [--batch N] \
         [--seed S] [--issue K] [--branches B] [--passes N] [--attempts N]\n\
         \x20      hyperpredc fsck <store-dir> [--repair] [--compact] [--stale-secs N]"
    );
    ExitCode::from(2)
}

/// Compiles each target with per-pass semantic checkpoints forced on and
/// reports every violation with the offending pass named.
fn lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(target) = args.next().filter(|t| !t.starts_with("--")) else {
        return usage();
    };
    let mut models = Model::ALL.to_vec();
    let mut scale = Scale::Test;
    let mut sabotage = None;
    let mut issue = 8;
    let mut branches = 1;
    let mut prog_args: Vec<i64> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--model" => {
                models = match args.next().as_deref() {
                    Some("sup" | "superblock") => vec![Model::Superblock],
                    Some("cmov" | "partial") => vec![Model::CondMove],
                    Some("full") => vec![Model::FullPred],
                    Some("all") => Model::ALL.to_vec(),
                    _ => return usage(),
                };
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    _ => return usage(),
                };
            }
            "--sabotage" => {
                let Some(s) = args.next().and_then(|v| v.parse::<Stage>().ok()) else {
                    return usage();
                };
                sabotage = Some(s);
            }
            "--issue" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                issue = n;
            }
            "--branches" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                branches = n;
            }
            "--args" => {
                let Some(v) = args.next() else { return usage() };
                let Ok(parsed) = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect::<Result<Vec<i64>, _>>()
                else {
                    return usage();
                };
                prog_args = parsed;
            }
            _ => return usage(),
        }
    }
    // A target is a known workload name, `all` of them, or a source file.
    let targets: Vec<(String, String, Vec<i64>)> = if target == "all" {
        hyperpred::workloads::all(scale)
            .into_iter()
            .map(|w| (w.name.to_string(), w.source, w.args))
            .collect()
    } else if let Some(w) = hyperpred::workloads::by_name(&target, scale) {
        vec![(w.name.to_string(), w.source, w.args)]
    } else {
        match std::fs::read_to_string(&target) {
            Ok(source) => vec![(target.clone(), source, prog_args.clone())],
            Err(e) => {
                eprintln!("hyperpredc: `{target}` is neither a workload nor a readable file: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let pipe = Pipeline {
        checks: true,
        sabotage,
        ..Pipeline::default()
    };
    let machine = MachineConfig::new(issue, branches);
    let mut failed = 0usize;
    for (name, source, wargs) in &targets {
        for model in &models {
            match pipe.compile(source, wargs, *model, &machine) {
                Ok(_) => println!("{name} [{model}]: ok"),
                Err(PipelineError::Lint(e)) => {
                    failed += 1;
                    println!(
                        "{name} [{model}]: FAIL after pass `{}` ({} violations)",
                        e.pass,
                        e.violations.len()
                    );
                    for v in &e.violations {
                        println!("  {v}");
                    }
                }
                Err(e) => {
                    failed += 1;
                    println!("{name} [{model}]: FAIL ({e})");
                }
            }
        }
    }
    if failed > 0 {
        eprintln!(
            "hyperpredc: {failed}/{} lint targets failed",
            targets.len() * models.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Compiles each target and dumps (or, with `--check`, validates) the
/// predicate partition graph the relation analysis derives for it.
fn analyze(mut args: impl Iterator<Item = String>) -> ExitCode {
    use hyperpred::ir::analysis::relations::TOP;
    use hyperpred::ir::analysis::{check_relation_soundness, ForwardAnalysis};
    use hyperpred::ir::{Cfg, PredReg, RelAnalysis, RelState, RelationDb};

    let Some(target) = args.next().filter(|t| !t.starts_with("--")) else {
        return usage();
    };
    let mut models = vec![Model::FullPred];
    let mut scale = Scale::Test;
    let mut check = false;
    let mut issue = 8;
    let mut branches = 1;
    let mut prog_args: Vec<i64> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--model" => {
                models = match args.next().as_deref() {
                    Some("sup" | "superblock") => vec![Model::Superblock],
                    Some("cmov" | "partial") => vec![Model::CondMove],
                    Some("full") => vec![Model::FullPred],
                    Some("all") => Model::ALL.to_vec(),
                    _ => return usage(),
                };
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    _ => return usage(),
                };
            }
            "--check" => check = true,
            "--issue" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                issue = n;
            }
            "--branches" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                branches = n;
            }
            "--args" => {
                let Some(v) = args.next() else { return usage() };
                let Ok(parsed) = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect::<Result<Vec<i64>, _>>()
                else {
                    return usage();
                };
                prog_args = parsed;
            }
            _ => return usage(),
        }
    }
    let targets: Vec<(String, String, Vec<i64>)> = if target == "all" {
        hyperpred::workloads::all(scale)
            .into_iter()
            .map(|w| (w.name.to_string(), w.source, w.args))
            .collect()
    } else if let Some(w) = hyperpred::workloads::by_name(&target, scale) {
        vec![(w.name.to_string(), w.source, w.args)]
    } else {
        match std::fs::read_to_string(&target) {
            Ok(source) => vec![(target.clone(), source, prog_args.clone())],
            Err(e) => {
                eprintln!("hyperpredc: `{target}` is neither a workload nor a readable file: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    /// One line of facts for a non-vacuous relation state.
    fn fmt_state(s: &RelState) -> String {
        let mut parts: Vec<String> = Vec::new();
        let np = s.pred_count();
        for i in 0..np {
            let p = PredReg(i as u32);
            for q in s.disjoint_of(p) {
                if p.0 < q.0 {
                    parts.push(format!("{p} ⟂ {q}"));
                }
            }
            for q in s.subset_of(p) {
                parts.push(format!("{p} ⊆ {q}"));
            }
            if s.known_true(p) {
                parts.push(format!("{p} = 1"));
            }
            if s.known_false(p) {
                parts.push(format!("{p} = 0"));
            }
        }
        for &[a, b, t] in s.partitions() {
            let rhs = if t == TOP {
                "⊤".to_string()
            } else {
                PredReg(t).to_string()
            };
            parts.push(format!("p{a} ∨ p{b} ⊇ {rhs}"));
        }
        parts.join(", ")
    }

    let pipe = Pipeline::default();
    let machine = MachineConfig::new(issue, branches);
    let mut failed = 0usize;
    for (name, source, wargs) in &targets {
        for model in &models {
            let module = match pipe.compile(source, wargs, *model, &machine) {
                Ok(m) => m,
                Err(e) => {
                    failed += 1;
                    println!("{name} [{model}]: FAIL ({e})");
                    continue;
                }
            };
            let mut violations = Vec::new();
            let mut printed = 0usize;
            for f in &module.funcs {
                let cfg = Cfg::new(f);
                let db = RelationDb::build(f, &cfg);
                if check {
                    check_relation_soundness(f, &db, &mut violations);
                    continue;
                }
                // The graph at block entry, plus the state in force at
                // block exit (where dual-define partitions and nesting
                // facts derived inside a hyperblock are visible).
                let mut facts: Vec<String> = Vec::new();
                for (b, s) in db.entry.iter().enumerate() {
                    let Some(s) = s else { continue };
                    if !s.is_vacuous() {
                        facts.push(format!("  B{b} entry: {}", fmt_state(s)));
                    }
                    let mut exit = s.clone();
                    for inst in &f.blocks[b].insts {
                        RelAnalysis.transfer(inst, &mut exit);
                        if inst.ends_block() {
                            break;
                        }
                    }
                    if !exit.is_vacuous() && exit != *s {
                        facts.push(format!("  B{b} exit:  {}", fmt_state(&exit)));
                    }
                }
                if facts.is_empty() {
                    continue;
                }
                println!("{name} [{model}] {}:", f.name);
                for line in facts {
                    println!("{line}");
                    printed += 1;
                }
            }
            if check {
                if violations.is_empty() {
                    println!("{name} [{model}]: ok");
                } else {
                    failed += 1;
                    println!("{name} [{model}]: FAIL ({} violations)", violations.len());
                    for v in &violations {
                        println!("  {v}");
                    }
                }
            } else if printed == 0 {
                println!("{name} [{model}]: no predicate relations (unpredicated code)");
            }
        }
    }
    if failed > 0 {
        eprintln!(
            "hyperpredc: {failed}/{} analyze targets failed",
            targets.len() * models.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs the paper's full experiment matrix through the parallel engine.
fn report(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut threads = 0usize;
    let mut scale = Scale::Full;
    let mut verbose = false;
    let mut keep_going = false;
    let mut resume: Option<String> = None;
    let mut retries = 1u32;
    let mut triage_dir: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                threads = n;
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    _ => return usage(),
                };
            }
            "--verbose" => verbose = true,
            "--keep-going" => keep_going = true,
            "--resume" => {
                let Some(p) = args.next() else { return usage() };
                resume = Some(p);
            }
            "--retries" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                retries = n;
            }
            "--triage" => {
                let Some(d) = args.next() else { return usage() };
                triage_dir = Some(d);
            }
            _ => return usage(),
        }
    }
    // The durability flags only make sense when partial progress is kept.
    if resume.is_some() || triage_dir.is_some() || retries > 1 {
        keep_going = true;
    }
    let exps = [
        Experiment::fig8(),
        Experiment::fig9(),
        Experiment::fig10(),
        Experiment::fig11(),
    ];
    if keep_going {
        let journal = match &resume {
            Some(p) => match RunJournal::open(p) {
                Ok(j) => Some(j),
                Err(e) => {
                    eprintln!("hyperpredc: cannot open journal {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let triage = triage_dir.map(TriageConfig::new);
        let workloads = hyperpred::workloads::all(scale);
        let run = run_matrix_configured(
            &exps,
            &workloads,
            &Pipeline::default(),
            &MatrixConfig {
                threads,
                policy: FailurePolicy::KeepGoing,
                retry: RetryPolicy {
                    max_attempts: retries.max(1),
                    backoff: Duration::from_millis(50),
                },
                journal: journal.as_ref(),
                triage: triage.as_ref(),
                ..MatrixConfig::default()
            },
        );
        let figures: Vec<Vec<BenchResult>> = run
            .outcomes
            .iter()
            .map(|row| row.iter().filter_map(|o| o.ok().cloned()).collect())
            .collect();
        for (exp, results) in exps.iter().zip(&figures) {
            println!("{}", speedup_table(exp, results));
        }
        println!("{}", instruction_table(&figures[0]));
        println!("{}", branch_table(&figures[0]));
        let summary = summarize_run(&run);
        eprintln!("{}", summary.text);
        if verbose {
            for cell in &run.stats.cells {
                eprintln!("  {cell}");
            }
        }
        if summary.failed {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let (figures, stats) = match run_matrix_with_stats(&exps, scale, &Pipeline::default(), threads)
    {
        Ok(out) => (out.figures, out.stats),
        Err(e) => {
            eprintln!("hyperpredc: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (exp, results) in exps.iter().zip(&figures) {
        println!("{}", speedup_table(exp, results));
    }
    println!("{}", instruction_table(&figures[0]));
    println!("{}", branch_table(&figures[0]));
    eprintln!("{}", stats.summary());
    if verbose {
        for cell in &stats.cells {
            eprintln!("  {cell}");
        }
    }
    ExitCode::SUCCESS
}

/// Replays a triage bundle and compares failure signatures.
///
/// Exit codes: 1 = the recorded failure reproduced (same signature),
/// 0 = the cell now passes, 3 = it failed with a *different* signature,
/// 2 = the bundle could not be loaded.
fn repro(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(dir) = args.next().filter(|d| !d.starts_with("--")) else {
        return usage();
    };
    let mut minimize = false;
    for flag in args {
        match flag.as_str() {
            "--minimize" => minimize = true,
            _ => return usage(),
        }
    }
    // Exit 2 like other bad-input paths: 1 would read as "reproduced".
    let bundle = match hyperpred::load_bundle(&dir) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hyperpredc: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bundle: {} / {} / {} ({} stage, {} attempt(s))",
        bundle.cell.workload,
        bundle.cell.experiment,
        hyperpred::journal::model_slug(bundle.cell.model),
        bundle.cell.stage,
        bundle.cell.attempts,
    );
    println!("recorded signature: {}", bundle.cell.signature);
    let outcome = match hyperpred::triage::replay(&bundle.cell, &bundle.source) {
        Some(sig) if sig == bundle.cell.signature => {
            println!("reproduced: {sig}");
            ExitCode::from(1)
        }
        Some(sig) => {
            println!("different failure: {sig}");
            ExitCode::from(3)
        }
        None => {
            println!("cell now passes; recorded failure did not reproduce");
            ExitCode::SUCCESS
        }
    };
    if minimize {
        if !hyperpred::triage::minimizable(&bundle.cell.signature) {
            println!("minimizer: budget failures are not minimized");
        } else {
            match hyperpred::minimize_source(&bundle.cell, &bundle.source) {
                Some(min) => {
                    let path = bundle.dir.join("minimized.c");
                    match std::fs::write(&path, &min.source) {
                        Ok(()) => println!(
                            "minimized: {} -> {} source lines ({})",
                            min.original_lines,
                            min.minimized_lines,
                            path.display()
                        ),
                        Err(e) => eprintln!("hyperpredc: cannot write {}: {e}", path.display()),
                    }
                }
                None => println!("minimizer: failure does not reproduce, nothing to shrink"),
            }
        }
    }
    outcome
}

/// Runs the adversarial generated-workload soak battery.
///
/// Exit codes: 0 = every program passed the oracle battery, 1 = at
/// least one failure (or the run stopped early at `--max-cells`),
/// 2 = bad arguments or an unopenable journal.
fn soak(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut cfg = hyperpred::SoakConfig::new(0, 100);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--seed" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.seed = n;
            }
            "--cells" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.cells = n;
            }
            "--resume" => {
                let Some(p) = args.next() else { return usage() };
                cfg.journal = Some(p.into());
            }
            "--triage" => {
                let Some(d) = args.next() else { return usage() };
                cfg.triage = Some(hyperpred::TriageConfig::new(d));
            }
            "--profiles" => {
                let Some(v) = args.next() else { return usage() };
                let Some(parsed) = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(hyperpred::workloads::gen::Profile::from_name)
                    .collect::<Option<Vec<_>>>()
                else {
                    eprintln!(
                        "hyperpredc: unknown profile in `{v}` (known: {})",
                        hyperpred::workloads::gen::Profile::ALL
                            .map(|p| p.name())
                            .join(", ")
                    );
                    return usage();
                };
                cfg.profiles = parsed;
            }
            "--widths" => {
                let Some(v) = args.next() else { return usage() };
                let Some(parsed) = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|pair| {
                        let (i, b) = pair.split_once('x')?;
                        Some((
                            i.parse().ok().filter(|&n| n >= 1)?,
                            b.parse().ok().filter(|&n| n >= 1)?,
                        ))
                    })
                    .collect::<Option<Vec<(u32, u32)>>>()
                else {
                    eprintln!(
                        "hyperpredc: --widths wants comma-separated IxB pairs, e.g. 1x1,4x1,8x2"
                    );
                    return usage();
                };
                cfg.widths = parsed;
            }
            "--max-cells" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.cell_limit = Some(n);
            }
            "--sabotage" => {
                let Some(s) = args.next().and_then(|v| v.parse::<Stage>().ok()) else {
                    return usage();
                };
                cfg.sabotage = Some(s);
            }
            "--max-cycles" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.max_cycles = n;
            }
            "--fuel" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.fuel = n;
            }
            _ => return usage(),
        }
    }
    let report = match hyperpred::run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hyperpredc: soak: {e}");
            return ExitCode::from(2);
        }
    };
    if report.journal_corrupt > 0 {
        eprintln!(
            "hyperpredc: warning: skipped {} corrupt journal record(s)",
            report.journal_corrupt
        );
    }
    for f in &report.failures {
        match &f.bundle {
            Some(dir) => eprintln!(
                "FAIL {} ({}): {} [bundle: {}]",
                f.workload,
                f.profile,
                f.signature,
                dir.display()
            ),
            None => eprintln!("FAIL {} ({}): {}", f.workload, f.profile, f.signature),
        }
    }
    println!(
        "soak: {} program(s) requested, {} ran, {} journaled-skipped, {} degraded, {} failed{}",
        report.programs,
        report.ran,
        report.skipped,
        report.degraded,
        report.failures.len(),
        if report.interrupted {
            " (interrupted at --max-cells)"
        } else {
            ""
        }
    );
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Drives a running `hyperpredd` with seeded generated cells and
/// reports sustained throughput and cache hit rate per pass.
///
/// Later passes replay the identical request stream, so a healthy
/// daemon answers them entirely from the store with bit-identical
/// stats; any divergence is reported and fails the run.
///
/// Exit codes: 0 = every pass completed and repeats were bit-identical,
/// 1 = failed cells or non-reproducible repeat results, 2 = bad
/// arguments or an unreachable daemon.
fn bench_load(mut args: impl Iterator<Item = String>) -> ExitCode {
    use hyperpred::service::{load_requests, run_load, LoadConfig};
    let mut cfg = LoadConfig::default();
    let mut passes = 2usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => {
                let Some(a) = args.next() else { return usage() };
                cfg.addr = a;
            }
            "--cells" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.cells = n;
            }
            "--batch" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                else {
                    return usage();
                };
                cfg.batch = n;
            }
            "--seed" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.seed = n;
            }
            "--issue" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u32| n >= 1)
                else {
                    return usage();
                };
                cfg.issue = n;
            }
            "--branches" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u32| n >= 1)
                else {
                    return usage();
                };
                cfg.branches = n;
            }
            "--passes" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                else {
                    return usage();
                };
                passes = n;
            }
            "--attempts" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u32| n >= 1)
                else {
                    return usage();
                };
                cfg.attempts = n;
            }
            _ => return usage(),
        }
    }
    let reqs = load_requests(&cfg);
    let mut ok = true;
    let mut first_pass: Option<Vec<_>> = None;
    for pass in 1..=passes {
        let (report, responses) = match run_load(&cfg, &reqs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hyperpredc: bench-load: {e}");
                return ExitCode::from(2);
            }
        };
        println!("pass {pass}: {report}");
        if report.failed > 0 || report.conflicts > 0 {
            ok = false;
        }
        match &first_pass {
            None => first_pass = Some(responses),
            Some(first) => {
                // The request stream is deterministic, so a repeat pass
                // must reproduce the first pass bit-for-bit (fingerprint
                // and stats; Hit-vs-Computed status may differ) and be
                // served from the store.
                let mut mismatches = 0usize;
                for (a, b) in first.iter().zip(&responses) {
                    if a.fingerprint != b.fingerprint || a.stats != b.stats {
                        mismatches += 1;
                    }
                }
                if mismatches > 0 {
                    eprintln!(
                        "hyperpredc: bench-load: pass {pass} diverged from pass 1 \
                         on {mismatches}/{} cells",
                        first.len()
                    );
                    ok = false;
                }
                if report.hits + report.rejected < report.sent {
                    eprintln!(
                        "hyperpredc: bench-load: pass {pass} recomputed {} cell(s) \
                         that should have been store hits",
                        report.computed + report.failed + report.conflicts
                    );
                    ok = false;
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scans a result-store directory for damage — torn tails, checksum
/// failures, stale compaction locks, orphan temp files — and with
/// `--repair` fixes what can be fixed (corrupt lines are quarantined,
/// never deleted). Exit status: 0 clean, 1 findings, 2 I/O failure.
fn fsck_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let Some(dir) = args.next().filter(|t| !t.starts_with("--")) else {
        return usage();
    };
    let mut opts = FsckOptions::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--repair" => opts.repair = true,
            "--compact" => {
                opts.repair = true;
                opts.compact = true;
            }
            "--stale-secs" => {
                let Some(secs) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                opts.lock_stale_after = Duration::from_secs(secs);
            }
            _ => return usage(),
        }
    }
    match fsck(&dir, &opts) {
        Ok(report) => {
            println!("fsck {dir}:");
            print!("{report}");
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                // Findings — repaired or not — exit 1 so scripts notice
                // the store needed attention.
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hyperpredc: fsck {dir}: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or_else(usage)?;
    let file = it.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        file,
        models: vec![Model::FullPred],
        issue: 8,
        branches: 1,
        caches: false,
        args: Vec::new(),
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--model" => {
                let v = it.next().ok_or_else(usage)?;
                opts.models = match v.as_str() {
                    "sup" | "superblock" => vec![Model::Superblock],
                    "cmov" | "partial" => vec![Model::CondMove],
                    "full" => vec![Model::FullPred],
                    "all" => Model::ALL.to_vec(),
                    _ => return Err(usage()),
                };
            }
            "--issue" => {
                opts.issue = it.next().ok_or_else(usage)?.parse().map_err(|_| usage())?;
            }
            "--branches" => {
                opts.branches = it.next().ok_or_else(usage)?.parse().map_err(|_| usage())?;
            }
            "--caches" => opts.caches = true,
            "--args" => {
                let v = it.next().ok_or_else(usage)?;
                opts.args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().map_err(|_| usage()))
                    .collect::<Result<_, _>>()?;
            }
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    {
        // `report` and `lint` take workload names rather than an input
        // file; dispatch them before the file-oriented argument parser.
        let mut it = std::env::args().skip(1);
        match it.next().as_deref() {
            Some("report") => return report(it),
            Some("repro") => return repro(it),
            Some("lint") => return lint(it),
            Some("analyze") => return analyze(it),
            Some("soak") => return soak(it),
            Some("bench-load") => return bench_load(it),
            Some("fsck") => return fsck_cmd(it),
            _ => {}
        }
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(c) => return c,
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hyperpredc: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let pipe = Pipeline::default();
    let machine = MachineConfig::new(opts.issue, opts.branches);
    let sim = SimConfig {
        memory: if opts.caches {
            MemoryModel::Caches(CacheConfig::default())
        } else {
            MemoryModel::Perfect
        },
        ..SimConfig::default()
    };

    match opts.command.as_str() {
        "dump" => {
            for model in &opts.models {
                let m = match pipe.compile(&source, &opts.args, *model, &machine) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("hyperpredc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "==== {model} (scheduled for {}-issue, {}-branch) ====",
                    opts.issue, opts.branches
                );
                print!("{m}");
            }
            ExitCode::SUCCESS
        }
        "run" => {
            for model in &opts.models {
                let m = match pipe.compile(&source, &opts.args, *model, &machine) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("hyperpredc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut emu = Emulator::new(&m);
                match emu.run("main", &entry_args(&opts.args), &mut NullSink) {
                    Ok(out) => println!(
                        "{model}: returned {} ({} instructions executed)",
                        out.ret, out.fetched
                    ),
                    Err(e) => {
                        eprintln!("hyperpredc: runtime error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "sim" => {
            let base = match evaluate(
                &source,
                &opts.args,
                Model::Superblock,
                MachineConfig::one_issue(),
                sim,
                &pipe,
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hyperpredc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "baseline (1-issue superblock): {} cycles, {} insts",
                base.cycles, base.insts
            );
            for model in &opts.models {
                match evaluate(&source, &opts.args, *model, machine, sim, &pipe) {
                    Ok(s) => println!(
                        "{model} @ {}-issue/{}-br: {} cycles, {} insts, {} branches, {} mispredicts, ipc {:.2}, speedup {:.2}",
                        opts.issue,
                        opts.branches,
                        s.cycles,
                        s.insts,
                        s.branches,
                        s.mispredicts,
                        s.ipc(),
                        speedup(&base, &s)
                    ),
                    Err(e) => {
                        eprintln!("hyperpredc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
