//! Plain-text table formatting for experiment output, and the shared
//! end-of-run summary for keep-going matrix drivers.

use crate::matrix::MatrixRun;

/// One row of a report table: a label and its cell values.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (benchmark name, "average", ...).
    pub label: String,
    /// Cell texts, one per column.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from a label and preformatted cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Row {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// Renders an aligned plain-text table with a header row.
pub fn format_table(title: &str, headers: &[&str], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let mut label_w = "benchmark".len();
    for r in rows {
        label_w = label_w.max(r.label.len());
        for (i, c) in r.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<label_w$}", "benchmark"));
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("  {h:>w$}"));
    }
    out.push('\n');
    let total = label_w + widths.iter().map(|w| w + 2).sum::<usize>();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<label_w$}", r.label));
        for (c, w) in r.cells.iter().zip(&widths) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// The end-of-run verdict every keep-going driver prints: one text block
/// for stderr and the process's exit decision, computed in exactly one
/// place so `figures` and `hyperpredc report` cannot drift apart.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// True iff the process should exit nonzero: some cell permanently
    /// failed, or the run stopped before claiming every cell.
    pub failed: bool,
    /// Human-readable summary (engine counters, the failure report when
    /// nonempty, and resume/partial notes).
    pub text: String,
}

/// Summarizes a fault-tolerant engine run: engine counters, the failure
/// report (iff any cell failed), and what that means for the tables and
/// the exit code.
pub fn summarize_run(run: &MatrixRun) -> RunSummary {
    let mut text = run.stats.summary();
    if !run.report.is_empty() {
        text.push('\n');
        text.push_str(&run.report.to_string());
        text.push_str("some cells failed; tables are partial");
    }
    if run.interrupted {
        text.push_str(
            "\nrun interrupted before every cell was claimed; resume from the journal to finish",
        );
    }
    RunSummary {
        failed: !run.report.is_empty() || run.interrupted,
        text,
    }
}

/// Formats a large count the way the paper does (`1526K`, `11225M`).
pub fn human_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{}M", v / 1_000_000)
    } else if v >= 10_000 {
        format!("{}K", v / 1_000)
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let rows = vec![
            Row::new("wc", vec!["1.00".into(), "2.70".into()]),
            Row::new("grep", vec!["1.46".into(), "1.91".into()]),
        ];
        let t = format_table("Figure 8", &["Superblock", "Full"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "Figure 8");
        assert!(lines[1].contains("Superblock"));
        assert!(lines[3].starts_with("wc"));
        // All data lines have equal length.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(123), "123");
        assert_eq!(human_count(45_600), "45K");
        assert_eq!(human_count(11_225_000_000), "11225M");
    }

    #[test]
    fn run_summary_pins_exit_semantics() {
        use crate::matrix::{
            CellFailure, EngineStats, FailurePayload, FailureReport, FailureStage, MatrixRun,
        };
        let clean = MatrixRun {
            outcomes: Vec::new(),
            stats: EngineStats::default(),
            report: FailureReport::default(),
            interrupted: false,
        };
        let s = summarize_run(&clean);
        assert!(!s.failed, "clean run exits zero");
        assert!(!s.text.contains("failure report"));

        let failed = MatrixRun {
            report: FailureReport {
                failures: vec![CellFailure {
                    workload: "wc",
                    experiment: "Figure 8",
                    model: None,
                    stage: FailureStage::Compile,
                    payload: FailurePayload::Panic("boom".into()),
                    wall: std::time::Duration::ZERO,
                    attempts: 1,
                }],
            },
            ..clean
        };
        let s = summarize_run(&failed);
        assert!(s.failed, "any permanent failure exits nonzero");
        assert!(s.text.contains("failure report"));
        assert!(s.text.contains("tables are partial"));

        let interrupted = MatrixRun {
            outcomes: Vec::new(),
            stats: EngineStats::default(),
            report: FailureReport::default(),
            interrupted: true,
        };
        let s = summarize_run(&interrupted);
        assert!(s.failed, "an interrupted run exits nonzero");
        assert!(s.text.contains("resume"));
    }
}
