//! Fault-injection fixtures for exercising the matrix engine's
//! containment guarantees (panic isolation, watchdog budgets) end to end.
//!
//! Two fixture workloads are provided:
//!
//! * [`panic_fixture`] — its source carries [`PANIC_MARKER`]; when a
//!   [`Pipeline`](crate::Pipeline) has `fault_injection` enabled, compiling
//!   it panics deliberately, standing in for the 100+ `unwrap`/`assert`
//!   sites a pathological program could trip inside a pass.
//! * [`cycle_hog_fixture`] — a legitimate program whose simulated run is
//!   far longer than its neighbors', tripping the cycle-budget watchdog
//!   ([`SimError::CycleLimit`](hyperpred_sim::SimError::CycleLimit)) when
//!   an experiment's `max_cycles` is set below its runtime.
//!
//! Both are inert in normal operation: the panic fixture is valid MiniC
//! (the marker lives in a comment) and compiles cleanly when
//! `fault_injection` is off, and the hog completes under the default
//! 10-billion-cycle budget. They are wired into `figures
//! --keep-going --inject-faults` (the CI chaos smoke) and the
//! fault-injection test suite.

use hyperpred_ir::{Module, Op, Operand};
use hyperpred_workloads::Workload;
use std::sync::atomic::{AtomicU32, Ordering};

/// Source marker the pipeline panics on when fault injection is enabled.
pub const PANIC_MARKER: &str = "__hyperpred_fault_panic__";

/// Source marker for the *transient* panic fixture: compiling a source
/// carrying it panics only while the process-wide budget armed by
/// [`arm_flaky`] is nonzero, standing in for flaky infrastructure (OOM
/// kills, bit flips) that a retry policy should absorb.
pub const FLAKY_MARKER: &str = "__hyperpred_fault_flaky__";

/// Function-name marker for the simulate-stage panic fixture. Like
/// [`DIVERGE_MARKER`] it is a function *name*, so it survives lowering:
/// drivers that honor fault injection call
/// [`maybe_injected_sim_panic`] on the compiled module right before
/// simulating it, which panics after compilation succeeded — giving the
/// failure a lowered-IR artifact to dump and minimize.
pub const SIM_PANIC_MARKER: &str = "__hyperpred_fault_simpanic__";

/// Remaining deliberate failures of the flaky fixture (process-wide).
static FLAKY_BUDGET: AtomicU32 = AtomicU32::new(0);

/// Arms the flaky fixture: the next `n` compiles of a source carrying
/// [`FLAKY_MARKER`] (under fault injection) panic, then it heals.
pub fn arm_flaky(n: u32) {
    FLAKY_BUDGET.store(n, Ordering::SeqCst);
}

/// Consumes one unit of the flaky budget; true while failures remain.
pub(crate) fn flaky_should_panic() -> bool {
    FLAKY_BUDGET
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

/// Function-name marker for the result-divergence fixture. The marker is
/// a *function name* (not a comment) so it survives lowering into the IR:
/// [`Pipeline::finish`](crate::Pipeline::finish) recognizes it in the
/// compiled module under the full-predication model and skews `main`'s
/// return value, standing in for a model-specific miscompile.
pub const DIVERGE_MARKER: &str = "__hyperpred_fault_diverge__";

/// The wrong answer the skewed fixture returns (distinctive on sight).
pub const DIVERGE_RESULT: i64 = 24601;

/// A workload whose full-predication compile is deliberately miscompiled
/// under [`Pipeline::fault_injection`](crate::Pipeline::fault_injection):
/// its simulated result diverges from the baseline's, which the matrix
/// must report as a typed [`PipelineError::Diverged`](crate::PipelineError)
/// cell failure rather than a panic. Inert without injection.
pub fn diverge_fixture() -> Workload {
    Workload {
        name: "inject-diverge",
        description: "fault fixture: full-pred model result diverges when injection is enabled",
        source: format!(
            "int {DIVERGE_MARKER}(int x) {{ return x * 2 + 1; }}\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 40; i += 1) {{\n\
             \x20       if (i % 3 == 0) s += {DIVERGE_MARKER}(i);\n\
             \x20   }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// Skews every `ret` in `main` to return [`DIVERGE_RESULT`] — the
/// injected miscompile behind [`diverge_fixture`]. Structurally legal IR
/// (an immediate return operand), so it sails through the verifier and
/// surfaces only as a result mismatch, exactly like a real codegen bug.
pub(crate) fn skew_main_result(module: &mut Module) {
    let Some(main) = module.funcs.iter_mut().find(|f| f.name == "main") else {
        return;
    };
    for block in &mut main.blocks {
        for inst in &mut block.insts {
            if inst.op == Op::Ret && !inst.srcs.is_empty() {
                inst.srcs = vec![Operand::Imm(DIVERGE_RESULT)];
            }
        }
    }
}

/// A workload whose compilation panics under
/// [`Pipeline::fault_injection`](crate::Pipeline::fault_injection).
/// Without injection it is an ordinary small program.
pub fn panic_fixture() -> Workload {
    Workload {
        name: "inject-panic",
        description: "fault fixture: compile-stage panic when injection is enabled",
        source: format!(
            "/* {PANIC_MARKER} */\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 50; i += 1) {{ if (i % 2 == 0) s += i; }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// A workload whose compile fails transiently: with fault injection on
/// and [`arm_flaky`] armed, each compile attempt panics and consumes one
/// unit of the budget, after which the workload compiles cleanly. Used to
/// prove the matrix retry policy re-runs (and un-memoizes) transient
/// failures. Inert without injection or with an exhausted budget.
pub fn flaky_fixture() -> Workload {
    Workload {
        name: "inject-flaky",
        description: "fault fixture: transient compile panic while the flaky budget lasts",
        source: format!(
            "/* {FLAKY_MARKER} */\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 60; i += 1) {{ if (i % 3 == 0) s += 2; }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// A workload whose *simulation* panics under fault injection: the marker
/// is a function name, so it rides through compilation into the scheduled
/// module, and [`maybe_injected_sim_panic`] trips on it just before the
/// timing run. Because compilation has succeeded by then, the failure has
/// lowered IR to dump into a repro bundle and minimize. Inert without
/// injection.
pub fn sim_panic_fixture() -> Workload {
    Workload {
        name: "inject-simpanic",
        description: "fault fixture: simulate-stage panic when injection is enabled",
        source: format!(
            "int {SIM_PANIC_MARKER}(int x) {{ return x + 7; }}\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 30; i += 1) {{\n\
             \x20       if (i % 2 == 0) s += {SIM_PANIC_MARKER}(i);\n\
             \x20   }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// Panics iff `module` carries [`SIM_PANIC_MARKER`] — the simulate-stage
/// injection point. Drivers honoring
/// [`Pipeline::fault_injection`](crate::Pipeline::fault_injection) call
/// this on the compiled module right before simulating it.
pub fn maybe_injected_sim_panic(module: &Module) {
    if module.funcs.iter().any(|f| f.name == SIM_PANIC_MARKER) {
        panic!("injected simulate-stage panic ({SIM_PANIC_MARKER} fixture)");
    }
}

/// A terminating but long-running workload: roughly `6 * iters` dynamic
/// instructions, so its simulated cycle count exceeds any budget set
/// below that. Used with a lowered
/// [`Experiment::max_cycles`](crate::Experiment::max_cycles) to trip the
/// watchdog while healthy cells finish untouched.
pub fn cycle_hog_fixture(iters: i64) -> Workload {
    Workload {
        name: "inject-spin",
        description: "fault fixture: exceeds a lowered cycle budget",
        source: format!(
            "int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < {iters}; i += 1) {{\n\
             \x20       if (i % 4 == 0) s += 3; else s -= 1;\n\
             \x20   }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Pipeline};
    use hyperpred_sched::MachineConfig;

    #[test]
    fn fixtures_are_inert_without_injection() {
        let pipe = Pipeline::default();
        let machine = MachineConfig::new(8, 1);
        let w = panic_fixture();
        pipe.compile(&w.source, &w.args, Model::FullPred, &machine)
            .expect("panic fixture compiles cleanly when injection is off");
        let w = cycle_hog_fixture(100);
        pipe.compile(&w.source, &w.args, Model::Superblock, &machine)
            .expect("hog fixture is an ordinary program");
        let w = flaky_fixture();
        pipe.compile(&w.source, &w.args, Model::FullPred, &machine)
            .expect("flaky fixture compiles cleanly when injection is off");
        let w = sim_panic_fixture();
        let m = pipe
            .compile(&w.source, &w.args, Model::FullPred, &machine)
            .expect("sim-panic fixture compiles cleanly");
        // The marker function must survive lowering — the simulate-stage
        // injection point keys on it.
        assert!(m.funcs.iter().any(|f| f.name == SIM_PANIC_MARKER));
    }
}
