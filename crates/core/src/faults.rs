//! Fault-injection fixtures for exercising the matrix engine's
//! containment guarantees (panic isolation, watchdog budgets) end to end.
//!
//! Two fixture workloads are provided:
//!
//! * [`panic_fixture`] — its source carries [`PANIC_MARKER`]; when a
//!   [`Pipeline`](crate::Pipeline) has `fault_injection` enabled, compiling
//!   it panics deliberately, standing in for the 100+ `unwrap`/`assert`
//!   sites a pathological program could trip inside a pass.
//! * [`cycle_hog_fixture`] — a legitimate program whose simulated run is
//!   far longer than its neighbors', tripping the cycle-budget watchdog
//!   ([`SimError::CycleLimit`](hyperpred_sim::SimError::CycleLimit)) when
//!   an experiment's `max_cycles` is set below its runtime.
//!
//! Both are inert in normal operation: the panic fixture is valid MiniC
//! (the marker lives in a comment) and compiles cleanly when
//! `fault_injection` is off, and the hog completes under the default
//! 10-billion-cycle budget. They are wired into `figures
//! --keep-going --inject-faults` (the CI chaos smoke) and the
//! fault-injection test suite.

use hyperpred_ir::{Module, Op, Operand};
use hyperpred_workloads::Workload;

/// Source marker the pipeline panics on when fault injection is enabled.
pub const PANIC_MARKER: &str = "__hyperpred_fault_panic__";

/// Function-name marker for the result-divergence fixture. The marker is
/// a *function name* (not a comment) so it survives lowering into the IR:
/// [`Pipeline::finish`](crate::Pipeline::finish) recognizes it in the
/// compiled module under the full-predication model and skews `main`'s
/// return value, standing in for a model-specific miscompile.
pub const DIVERGE_MARKER: &str = "__hyperpred_fault_diverge__";

/// The wrong answer the skewed fixture returns (distinctive on sight).
pub const DIVERGE_RESULT: i64 = 24601;

/// A workload whose full-predication compile is deliberately miscompiled
/// under [`Pipeline::fault_injection`](crate::Pipeline::fault_injection):
/// its simulated result diverges from the baseline's, which the matrix
/// must report as a typed [`PipelineError::Diverged`](crate::PipelineError)
/// cell failure rather than a panic. Inert without injection.
pub fn diverge_fixture() -> Workload {
    Workload {
        name: "inject-diverge",
        description: "fault fixture: full-pred model result diverges when injection is enabled",
        source: format!(
            "int {DIVERGE_MARKER}(int x) {{ return x * 2 + 1; }}\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 40; i += 1) {{\n\
             \x20       if (i % 3 == 0) s += {DIVERGE_MARKER}(i);\n\
             \x20   }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// Skews every `ret` in `main` to return [`DIVERGE_RESULT`] — the
/// injected miscompile behind [`diverge_fixture`]. Structurally legal IR
/// (an immediate return operand), so it sails through the verifier and
/// surfaces only as a result mismatch, exactly like a real codegen bug.
pub(crate) fn skew_main_result(module: &mut Module) {
    let Some(main) = module.funcs.iter_mut().find(|f| f.name == "main") else {
        return;
    };
    for block in &mut main.blocks {
        for inst in &mut block.insts {
            if inst.op == Op::Ret && !inst.srcs.is_empty() {
                inst.srcs = vec![Operand::Imm(DIVERGE_RESULT)];
            }
        }
    }
}

/// A workload whose compilation panics under
/// [`Pipeline::fault_injection`](crate::Pipeline::fault_injection).
/// Without injection it is an ordinary small program.
pub fn panic_fixture() -> Workload {
    Workload {
        name: "inject-panic",
        description: "fault fixture: compile-stage panic when injection is enabled",
        source: format!(
            "/* {PANIC_MARKER} */\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 50; i += 1) {{ if (i % 2 == 0) s += i; }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// A terminating but long-running workload: roughly `6 * iters` dynamic
/// instructions, so its simulated cycle count exceeds any budget set
/// below that. Used with a lowered
/// [`Experiment::max_cycles`](crate::Experiment::max_cycles) to trip the
/// watchdog while healthy cells finish untouched.
pub fn cycle_hog_fixture(iters: i64) -> Workload {
    Workload {
        name: "inject-spin",
        description: "fault fixture: exceeds a lowered cycle budget",
        source: format!(
            "int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < {iters}; i += 1) {{\n\
             \x20       if (i % 4 == 0) s += 3; else s -= 1;\n\
             \x20   }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Pipeline};
    use hyperpred_sched::MachineConfig;

    #[test]
    fn fixtures_are_inert_without_injection() {
        let pipe = Pipeline::default();
        let machine = MachineConfig::new(8, 1);
        let w = panic_fixture();
        pipe.compile(&w.source, &w.args, Model::FullPred, &machine)
            .expect("panic fixture compiles cleanly when injection is off");
        let w = cycle_hog_fixture(100);
        pipe.compile(&w.source, &w.args, Model::Superblock, &machine)
            .expect("hog fixture is an ordinary program");
    }
}
