//! Fault-injection fixtures for exercising the matrix engine's
//! containment guarantees (panic isolation, watchdog budgets) end to end.
//!
//! Two fixture workloads are provided:
//!
//! * [`panic_fixture`] — its source carries [`PANIC_MARKER`]; when a
//!   [`Pipeline`](crate::Pipeline) has `fault_injection` enabled, compiling
//!   it panics deliberately, standing in for the 100+ `unwrap`/`assert`
//!   sites a pathological program could trip inside a pass.
//! * [`cycle_hog_fixture`] — a legitimate program whose simulated run is
//!   far longer than its neighbors', tripping the cycle-budget watchdog
//!   ([`SimError::CycleLimit`](hyperpred_sim::SimError::CycleLimit)) when
//!   an experiment's `max_cycles` is set below its runtime.
//!
//! Both are inert in normal operation: the panic fixture is valid MiniC
//! (the marker lives in a comment) and compiles cleanly when
//! `fault_injection` is off, and the hog completes under the default
//! 10-billion-cycle budget. They are wired into `figures
//! --keep-going --inject-faults` (the CI chaos smoke) and the
//! fault-injection test suite.

use hyperpred_workloads::Workload;

/// Source marker the pipeline panics on when fault injection is enabled.
pub const PANIC_MARKER: &str = "__hyperpred_fault_panic__";

/// A workload whose compilation panics under
/// [`Pipeline::fault_injection`](crate::Pipeline::fault_injection).
/// Without injection it is an ordinary small program.
pub fn panic_fixture() -> Workload {
    Workload {
        name: "inject-panic",
        description: "fault fixture: compile-stage panic when injection is enabled",
        source: format!(
            "/* {PANIC_MARKER} */\n\
             int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < 50; i += 1) {{ if (i % 2 == 0) s += i; }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

/// A terminating but long-running workload: roughly `6 * iters` dynamic
/// instructions, so its simulated cycle count exceeds any budget set
/// below that. Used with a lowered
/// [`Experiment::max_cycles`](crate::Experiment::max_cycles) to trip the
/// watchdog while healthy cells finish untouched.
pub fn cycle_hog_fixture(iters: i64) -> Workload {
    Workload {
        name: "inject-spin",
        description: "fault fixture: exceeds a lowered cycle budget",
        source: format!(
            "int main() {{\n\
             \x20   int i; int s; s = 0;\n\
             \x20   for (i = 0; i < {iters}; i += 1) {{\n\
             \x20       if (i % 4 == 0) s += 3; else s -= 1;\n\
             \x20   }}\n\
             \x20   return s;\n}}"
        ),
        args: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Pipeline};
    use hyperpred_sched::MachineConfig;

    #[test]
    fn fixtures_are_inert_without_injection() {
        let pipe = Pipeline::default();
        let machine = MachineConfig::new(8, 1);
        let w = panic_fixture();
        pipe.compile(&w.source, &w.args, Model::FullPred, &machine)
            .expect("panic fixture compiles cleanly when injection is off");
        let w = cycle_hog_fixture(100);
        pipe.compile(&w.source, &w.args, Model::Superblock, &machine)
            .expect("hog fixture is an ordinary program");
    }
}
