//! Store integrity checking and repair: the library behind
//! `hyperpredc fsck <store>`.
//!
//! [`fsck`] walks every segment of a [`Store`](crate::store::Store)
//! directory and classifies each line with the exact rules the store's
//! own loader uses (valid checksummed cell / meta / foreign-version /
//! torn tail / corrupt), then reports what it found. With
//! [`FsckOptions::repair`] it also fixes what can be fixed without
//! guessing:
//!
//! - **torn tails** (a crash mid-append) are dropped — the record was
//!   never acked complete, so dropping it is the truthful repair;
//! - **corrupt lines** (checksum failures, mid-file garbage) are moved
//!   into `quarantine/<segment-name>` — never deleted, so a bad batch
//!   can be inspected or hand-recovered later;
//! - **stale `compact.lock`s** (dead owner, or past the staleness age)
//!   are reclaimed so compaction un-wedges;
//! - **orphan `tmp-` scratch files** from crashed compactions are
//!   removed (they are never read, only wasted space).
//!
//! Segment rewrites are crash-safe themselves: the surviving lines go
//! to a `tmp-` scratch name, get fsynced, and are renamed over the
//! original — so an fsck interrupted by another crash never makes a
//! store worse. Conflicted fingerprints are *reported but untouched*:
//! a conflict means neither payload can be trusted and both sides must
//! survive for reopen to re-detect it.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::journal::{is_expected_skip, parse_cell_line, CellIndex};
use crate::store::{
    is_segment_name, lock_is_stale, CompactStats, Store, StoreConfig, COMPACT_LOCK,
    DEFAULT_LOCK_STALE_AFTER, TMP_PREFIX,
};
use crate::vfs::Vfs;

/// Subdirectory corrupt lines are quarantined into by `--repair`.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Options for one [`fsck`] run.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Fix what can be fixed (see module docs). Without this, fsck only
    /// scans and reports.
    pub repair: bool,
    /// After a successful repair, also run a compaction.
    pub compact: bool,
    /// Staleness threshold for `compact.lock` reclamation.
    pub lock_stale_after: Duration,
    /// The I/O layer; [`Vfs::real`] outside fault-injection tests.
    pub vfs: Vfs,
}

impl Default for FsckOptions {
    fn default() -> FsckOptions {
        FsckOptions {
            repair: false,
            compact: false,
            lock_stale_after: DEFAULT_LOCK_STALE_AFTER,
            vfs: Vfs::real(),
        }
    }
}

/// What one [`fsck`] run found (and, under `repair`, did).
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Segment files scanned.
    pub segments: usize,
    /// Distinct servable fingerprints across all segments.
    pub cells: usize,
    /// Conflicted fingerprints (reported, never touched).
    pub conflicts: usize,
    /// Torn trailing lines found (crash mid-append).
    pub torn_tails: usize,
    /// Corrupt lines found (checksum failure or mid-file garbage).
    pub corrupt_lines: usize,
    /// Segments rewritten by repair.
    pub repaired_segments: usize,
    /// Corrupt lines moved into `quarantine/` by repair.
    pub quarantined: usize,
    /// A stale `compact.lock` was found.
    pub stale_lock: bool,
    /// The stale lock was reclaimed (repair only).
    pub lock_reclaimed: bool,
    /// A `compact.lock` held by a live owner was found (not a defect —
    /// a compaction appears to be running — but worth reporting).
    pub live_lock: bool,
    /// Orphan `tmp-` scratch files found.
    pub orphan_tmp: usize,
    /// Orphan scratch files removed (repair only).
    pub orphan_tmp_removed: usize,
    /// Stats of the optional post-repair compaction.
    pub compacted: Option<CompactStats>,
}

impl FsckReport {
    /// Findings that make the store not-clean. Conflicts count: they
    /// are not repairable, but a clean bill of health must not hide
    /// them.
    pub fn issues(&self) -> usize {
        self.torn_tails
            + self.corrupt_lines
            + self.conflicts
            + usize::from(self.stale_lock)
            + self.orphan_tmp
    }

    /// True when the store needed (and needs) nothing.
    pub fn clean(&self) -> bool {
        self.issues() == 0
    }

    /// True when repair fixed every repairable finding (conflicts and a
    /// live lock are not repairable and do not count against this).
    pub fn fully_repaired(&self) -> bool {
        self.quarantined == self.corrupt_lines
            && (!self.stale_lock || self.lock_reclaimed)
            && self.orphan_tmp_removed == self.orphan_tmp
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fsck: {} segments, {} cells, {} conflicts",
            self.segments, self.cells, self.conflicts
        )?;
        writeln!(
            f,
            "  torn tails: {} | corrupt lines: {} | orphan tmp files: {}",
            self.torn_tails, self.corrupt_lines, self.orphan_tmp
        )?;
        if self.live_lock {
            writeln!(
                f,
                "  compact.lock held by a live owner (compaction running?)"
            )?;
        }
        if self.stale_lock {
            writeln!(
                f,
                "  stale compact.lock{}",
                if self.lock_reclaimed {
                    " (reclaimed)"
                } else {
                    ""
                }
            )?;
        }
        if self.repaired_segments > 0 || self.quarantined > 0 || self.orphan_tmp_removed > 0 {
            writeln!(
                f,
                "  repaired: {} segments rewritten, {} lines quarantined, {} tmp files removed",
                self.repaired_segments, self.quarantined, self.orphan_tmp_removed
            )?;
        }
        if let Some(c) = &self.compacted {
            writeln!(
                f,
                "  compacted: {} segments -> {} lines ({} duplicates dropped)",
                c.segments_merged, c.lines_out, c.duplicates_dropped
            )?;
        }
        match (self.clean(), self.issues()) {
            (true, _) => write!(f, "  status: clean"),
            (false, n) => write!(f, "  status: {n} finding(s)"),
        }
    }
}

/// One scanned segment, split into surviving lines and damage.
struct SegmentScan {
    path: PathBuf,
    /// Lines to keep on rewrite: valid cells, meta, foreign versions.
    kept: Vec<String>,
    /// Corrupt lines destined for quarantine.
    bad: Vec<String>,
    /// A torn trailing line (dropped on rewrite, never quarantined —
    /// it is an expected crash artifact, not suspicious data).
    torn: Option<String>,
}

impl SegmentScan {
    fn damaged(&self) -> bool {
        !self.bad.is_empty() || self.torn.is_some()
    }
}

fn scan_one(vfs: &Vfs, path: &Path, index: &mut CellIndex) -> io::Result<SegmentScan> {
    let content = vfs.read_to_string(path)?;
    let lines: Vec<&str> = content.lines().collect();
    let mut scan = SegmentScan {
        path: path.to_path_buf(),
        kept: Vec::new(),
        bad: Vec::new(),
        torn: None,
    };
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some((fp, stats)) = parse_cell_line(line) {
            index.insert(&fp, stats);
            scan.kept.push((*line).to_string());
            continue;
        }
        let is_last = idx + 1 == lines.len();
        if is_expected_skip(line, is_last) {
            // Meta and foreign-version lines survive a rewrite; a torn
            // tail does not.
            if is_last && !line.trim_end().ends_with('}') {
                scan.torn = Some((*line).to_string());
            } else {
                scan.kept.push((*line).to_string());
            }
        } else {
            scan.bad.push((*line).to_string());
        }
    }
    Ok(scan)
}

/// Rewrites one damaged segment crash-safely (scratch + fsync + rename
/// + directory fsync) and quarantines its corrupt lines.
fn repair_segment(
    vfs: &Vfs,
    dir: &Path,
    scan: &SegmentScan,
    report: &mut FsckReport,
) -> io::Result<()> {
    if !scan.bad.is_empty() {
        let qdir = dir.join(QUARANTINE_DIR);
        vfs.create_dir_all(&qdir)?;
        let name = scan
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "segment".to_string());
        let mut q = vfs.append(&qdir.join(name))?;
        for line in &scan.bad {
            q.write_all(format!("{line}\n").as_bytes())?;
        }
        q.sync_all()?;
        report.quarantined += scan.bad.len();
    }
    let tmp = dir.join(format!("{TMP_PREFIX}fsck-{:08}", std::process::id()));
    let mut buf = String::new();
    for line in &scan.kept {
        buf.push_str(line);
        buf.push('\n');
    }
    let mut f = vfs.create(&tmp)?;
    f.write_all(buf.as_bytes())?;
    f.sync_all()?;
    vfs.rename(&tmp, &scan.path)?;
    vfs.sync_dir(dir)?;
    report.repaired_segments += 1;
    Ok(())
}

/// Scans (and with [`FsckOptions::repair`], repairs) the store at `dir`.
///
/// # Errors
/// Fails on I/O errors — an unreadable directory or a failed rewrite.
/// Damaged *contents* are findings, not errors.
pub fn fsck(dir: impl AsRef<Path>, opts: &FsckOptions) -> io::Result<FsckReport> {
    let dir = dir.as_ref();
    let vfs = &opts.vfs;
    let mut report = FsckReport::default();
    let mut index = CellIndex::default();

    let mut segments: Vec<PathBuf> = Vec::new();
    let mut orphans: Vec<PathBuf> = Vec::new();
    let mut lock: Option<PathBuf> = None;
    for path in vfs.read_dir_paths(dir)? {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if is_segment_name(&name) {
            segments.push(path);
        } else if name.starts_with(TMP_PREFIX) {
            orphans.push(path);
        } else if name == COMPACT_LOCK {
            lock = Some(path);
        }
    }
    // Deterministic order: same as the store's merge order, so the
    // conflict report matches what a reopen would say.
    segments.sort();
    report.segments = segments.len();

    for seg in &segments {
        let scan = match scan_one(vfs, seg, &mut index) {
            Ok(s) => s,
            // Lost a race with a live compactor; nothing to repair here.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        report.torn_tails += usize::from(scan.torn.is_some());
        report.corrupt_lines += scan.bad.len();
        if opts.repair && scan.damaged() {
            repair_segment(vfs, dir, &scan, &mut report)?;
        }
    }
    report.cells = index.len();
    report.conflicts = index.conflicts();

    if let Some(lock_path) = lock {
        if lock_is_stale(vfs, &lock_path, opts.lock_stale_after) {
            report.stale_lock = true;
            if opts.repair {
                match vfs.remove_file(&lock_path) {
                    Ok(()) => report.lock_reclaimed = true,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        report.lock_reclaimed = true;
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            report.live_lock = true;
        }
    }

    report.orphan_tmp = orphans.len();
    if opts.repair {
        for orphan in &orphans {
            match vfs.remove_file(orphan) {
                Ok(()) => report.orphan_tmp_removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    report.orphan_tmp_removed += 1;
                }
                Err(e) => return Err(e),
            }
        }
        if opts.compact && report.segments > 0 {
            let store = Store::open_with(
                dir,
                StoreConfig {
                    vfs: vfs.clone(),
                    lock_stale_after: opts.lock_stale_after,
                    ..StoreConfig::default()
                },
            )?;
            report.compacted = Some(store.compact()?);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{cell_line, JournalEntry};
    use crate::pipeline::Model;
    use crate::store::Store;
    use hyperpred_sim::SimStats;
    use std::fs;

    fn stats(seed: u64) -> SimStats {
        SimStats {
            cycles: seed,
            insts: seed + 1,
            nullified: seed + 2,
            branches: seed + 3,
            mispredicts: seed + 4,
            loads: seed + 5,
            stores: seed + 6,
            icache_misses: seed + 7,
            dcache_misses: seed + 8,
            ret: -(seed as i64),
        }
    }

    fn entry<'a>(fp: &'a str, s: &'a SimStats) -> JournalEntry<'a> {
        JournalEntry {
            fingerprint: fp,
            workload: "w",
            experiment: "baseline",
            model: Some(Model::FullPred),
            stats: s,
        }
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyperpred-fsck-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn clean_store_reports_clean() {
        let dir = fresh_dir("clean");
        let store = Store::open(&dir).unwrap();
        store.put(&entry("aa", &stats(1))).unwrap();
        store.put(&entry("bb", &stats(2))).unwrap();
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.clean(), "{report}");
        assert_eq!(report.cells, 2);
        assert_eq!(report.segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_drops_torn_tail_and_quarantines_corrupt_lines() {
        let dir = fresh_dir("repair");
        let s1 = stats(1);
        let seg = {
            let store = Store::open(&dir).unwrap();
            store.put(&entry("aa", &s1)).unwrap();
            store.put(&entry("bb", &stats(2))).unwrap();
            store.segment_path()
        };
        // Damage the segment: a checksum-failing line mid-file (flip a
        // digit of a valid record) and a torn tail.
        let good = cell_line(&entry("cc", &stats(3)));
        let flipped = good.replace("\"cycles\":3", "\"cycles\":4");
        assert_ne!(flipped, good);
        let mut content = fs::read_to_string(&seg).unwrap();
        content.push_str(&flipped);
        content.push_str("{\"kind\":\"cell\",\"version\":2,\"fp\":\"dd\",\"cyc");
        fs::write(&seg, &content).unwrap();
        // Plus an orphan compaction scratch file.
        fs::write(dir.join("tmp-compact-00000001"), "junk").unwrap();

        // Scan only: findings reported, nothing touched.
        let scan = fsck(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(scan.torn_tails, 1);
        assert_eq!(scan.corrupt_lines, 1);
        assert_eq!(scan.orphan_tmp, 1);
        assert!(!scan.clean());
        assert!(fs::read_to_string(&seg).unwrap().contains("\"fp\":\"dd\""));

        // Repair: torn tail dropped, corrupt line quarantined, orphan
        // removed — and the surviving records still load.
        let repair = fsck(
            &dir,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(repair.repaired_segments, 1);
        assert_eq!(repair.quarantined, 1);
        assert_eq!(repair.orphan_tmp_removed, 1);
        assert!(repair.fully_repaired(), "{repair}");
        let rewritten = fs::read_to_string(&seg).unwrap();
        assert!(!rewritten.contains("\"fp\":\"dd\""), "torn tail dropped");
        assert!(!rewritten.contains(flipped.trim_end()), "corrupt line gone");
        let qfile = dir
            .join(QUARANTINE_DIR)
            .join(seg.file_name().unwrap().to_string_lossy().into_owned());
        assert!(
            fs::read_to_string(&qfile)
                .unwrap()
                .contains(flipped.trim_end()),
            "corrupt line preserved in quarantine"
        );

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.corrupt(), 0, "repaired store scans clean");
        assert_eq!(store.get("aa"), Some(s1));
        assert!(store.get("bb").is_some());
        let clean = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(clean.clean(), "{clean}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_reported_and_reclaimed() {
        let dir = fresh_dir("lock");
        {
            let store = Store::open(&dir).unwrap();
            store.put(&entry("aa", &stats(1))).unwrap();
        }
        fs::write(dir.join(COMPACT_LOCK), "999999999\n").unwrap();
        let scan = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(scan.stale_lock);
        assert!(!scan.lock_reclaimed);
        assert!(dir.join(COMPACT_LOCK).exists());
        let repair = fsck(
            &dir,
            &FsckOptions {
                repair: true,
                compact: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(repair.lock_reclaimed);
        assert!(repair.compacted.is_some(), "post-repair compact ran");
        assert!(!dir.join(COMPACT_LOCK).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
