//! Parallel, fault-isolated experiment engine: runs the paper's full
//! figure matrix as a work queue of independent (workload, model,
//! experiment) cells, containing per-cell failures.
//!
//! The paper's evaluation is embarrassingly parallel — 15 workloads × 3
//! models × 4 machine configurations, each an independent compile +
//! emulate + cycle-simulate job — but a naive loop both serializes the
//! cells and repeats work across figures:
//!
//! * the same (source, model, machine) module is recompiled per figure
//!   (Figures 8 and 11 share an 8-issue/1-branch machine, and every figure
//!   compiles the 1-issue superblock baseline), and
//! * the fixed 1-issue perfect-memory baseline — the denominator of every
//!   speedup bar — is re-simulated per figure.
//!
//! This engine fixes both: a [`CompileCache`] keyed by (workload, model,
//! machine) hands out `Arc<Module>`s compiled exactly once, a baseline
//! memo simulates each workload's denominator once, and a
//! `std::thread::scope` work queue spreads the remaining cells over
//! `threads` workers. Results are bit-identical to the serial
//! [`run_experiment`](crate::experiments::run_experiment) path because
//! every pass and the simulator are deterministic; the engine only
//! deduplicates and reorders work, it never changes it.
//!
//! # Fault isolation
//!
//! Every cell runs inside `std::panic::catch_unwind` with a panic-hook
//! capture of the message, location, and cell identity, so a
//! `panic!`/`unwrap` deep inside a compiler pass, the emulator, or the
//! cycle simulator costs exactly one cell, never the run. A failed or
//! panicking compile is memoized as failed in the shared cache, so cells
//! depending on the same module skip it cheaply instead of re-panicking.
//! The timing simulator's cycle-budget watchdog
//! ([`SimError::CycleLimit`](hyperpred_sim::SimError)) bounds how long any
//! one cell can hold a worker. Under [`FailurePolicy::KeepGoing`] the
//! engine finishes every healthy cell and returns partial results plus a
//! structured [`FailureReport`]; [`FailurePolicy::FailFast`] (the
//! default-compatible mode) abandons remaining cells after the first
//! failure, as the pre-isolation engine did.
//!
//! # Durability
//!
//! [`run_matrix_configured`] layers crash-safety on top of isolation via
//! a [`MatrixConfig`]:
//!
//! * a [`RunJournal`] makes runs *resumable*: every completed cell is
//!   appended (fingerprint-keyed) to an append-only JSONL file, and a
//!   later run handed the same journal copies journaled stats back
//!   bit-identically instead of re-running the cell — at any thread
//!   count, since cells are independent;
//! * a [`RetryPolicy`] re-runs cells whose failure is plausibly
//!   transient (contained panics, watchdog trips) a bounded number of
//!   times, un-memoizing the compile cache's failure slots in between so
//!   a retry actually recompiles;
//! * a per-cell wall-clock *deadline* complements the cycle budget: the
//!   cycle budget bounds simulated work, the deadline bounds host time
//!   (a cell stuck outside the cycle loop still ends);
//! * a [`TriageConfig`] turns each *permanent* failure into a
//!   self-contained repro bundle (config + source + lowered IR + a
//!   delta-debugged minimal reproducer) replayable with
//!   `hyperpredc repro`.

use crate::experiments::{BenchResult, Experiment};
use crate::journal::{fnv64, model_slug, JournalEntry, RecordOutcome, RunJournal};
use crate::pipeline::{Degradation, FrontOutput, Model, Pipeline, PipelineError};
use crate::triage::{self, ReproCell, TriageConfig};
use hyperpred_emu::DecodedModule;
use hyperpred_ir::Module;
use hyperpred_lang::lower::entry_args;
use hyperpred_lang::CompileError;
use hyperpred_sched::MachineConfig;
use hyperpred_sim::{
    simulate_decoded, MemoryModel, SimConfig, SimError, SimStats, DEFAULT_CYCLE_LIMIT,
};
use hyperpred_workloads::{Scale, Workload};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Locks `m`, tolerating poison: a panic contained in one worker must not
/// cascade into every later lock of the shared accounting structures. The
/// guarded data here (counters, append-only vectors) stays consistent
/// because each push/increment is atomic with respect to the lock.
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wall-time and cache accounting for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the matrix run.
    pub wall: Duration,
    /// Compilations served from the cache instead of rerun.
    pub compile_hits: u64,
    /// Compilations actually performed (exactly once per distinct
    /// (workload, model, machine) triple).
    pub compile_misses: u64,
    /// Baseline (1-issue superblock, perfect memory) simulations run —
    /// one per workload, however many figures share them.
    pub baseline_sims: u64,
    /// Times a figure reused a memoized baseline instead of re-simulating.
    pub baseline_reuses: u64,
    /// Model-cell simulations run.
    pub model_sims: u64,
    /// Model-independent front halves (frontend through the profiling
    /// run) actually computed — once per workload.
    pub front_computes: u64,
    /// Compiles that reused a memoized front half instead of re-lowering
    /// and re-profiling the workload.
    pub front_reuses: u64,
    /// Cells whose stats were copied back from the run journal instead of
    /// re-run.
    pub journal_hits: u64,
    /// Cells appended to the run journal this run.
    pub journal_appends: u64,
    /// Extra cell attempts spent by the retry policy (beyond each cell's
    /// first).
    pub retries: u64,
    /// Per-cell wall times of successful cells, in completion order.
    pub cells: Vec<CellStat>,
}

impl EngineStats {
    /// Cells a serial figure-at-a-time loop would have run (each figure
    /// recompiling and re-simulating its own baseline).
    pub fn serial_equivalent_cells(&self) -> u64 {
        self.baseline_sims + self.baseline_reuses + self.model_sims
    }

    /// One-paragraph human summary for CLI output.
    pub fn summary(&self) -> String {
        let cell_wall: Duration = self.cells.iter().map(|c| c.wall).sum();
        let mut s = format!(
            "engine: {} cells in {:.2?} on {} thread(s) ({:.2?} of cell work; {:.1}x packing)\n\
             compile cache: {} misses, {} hits; baseline memo: {} simulated, {} reused\n\
             profile memo: {} front halves computed, {} reused\n\
             serial loop would run {} cells; the engine ran {}",
            self.cells.len(),
            self.wall,
            self.threads,
            cell_wall,
            cell_wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
            self.compile_misses,
            self.compile_hits,
            self.baseline_sims,
            self.baseline_reuses,
            self.front_computes,
            self.front_reuses,
            self.serial_equivalent_cells(),
            self.baseline_sims + self.model_sims,
        );
        if self.journal_hits > 0 || self.journal_appends > 0 {
            s.push_str(&format!(
                "\njournal: {} cell(s) reused, {} appended",
                self.journal_hits, self.journal_appends
            ));
        }
        if self.retries > 0 {
            s.push_str(&format!(
                "\nretries: {} extra cell attempt(s)",
                self.retries
            ));
        }
        s
    }
}

/// Wall time of one scheduled cell.
#[derive(Debug, Clone)]
pub struct CellStat {
    /// Workload name.
    pub workload: &'static str,
    /// Figure title, or `"baseline"` for the shared denominator cell.
    pub experiment: &'static str,
    /// Model simulated (`None` for the baseline cell).
    pub model: Option<Model>,
    /// Wall time spent on the cell (compile + simulate).
    pub wall: Duration,
}

impl fmt::Display for CellStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.model {
            Some(m) => write!(
                f,
                "{:>9} {:<12} {:>10.1?}  {}",
                self.workload,
                m.to_string(),
                self.wall,
                self.experiment
            ),
            None => write!(
                f,
                "{:>9} {:<12} {:>10.1?}  shared denominator",
                self.workload, "baseline", self.wall
            ),
        }
    }
}

/// What the engine does after a cell fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abandon remaining cells after the first failure (the historical
    /// behavior; [`run_matrix`] uses this and surfaces the error).
    #[default]
    FailFast,
    /// Finish every remaining cell; failed cells are reported in the
    /// [`FailureReport`] and healthy cells stay bit-identical to a clean
    /// run.
    KeepGoing,
}

/// The pipeline stage a cell failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureStage {
    /// MiniC frontend, optimizer, region formation, or scheduling.
    Compile,
    /// The profiling emulation run inside compilation.
    Emulate,
    /// The timing simulation (including its cycle-budget watchdog) and
    /// result cross-checks.
    Simulate,
}

impl fmt::Display for FailureStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureStage::Compile => "compile",
            FailureStage::Emulate => "emulate",
            FailureStage::Simulate => "simulate",
        })
    }
}

/// Why a cell failed.
#[derive(Debug, Clone)]
pub enum FailurePayload {
    /// A typed pipeline error (compile, emulation, or watchdog).
    Error(PipelineError),
    /// A contained panic; the captured message plus source location.
    Panic(String),
}

impl fmt::Display for FailurePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailurePayload::Error(e) => write!(f, "{e}"),
            FailurePayload::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// One failed cell: everything needed to reproduce it from the report
/// line alone.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Workload name.
    pub workload: &'static str,
    /// Figure title, or `"baseline"` for the shared denominator cell.
    pub experiment: &'static str,
    /// Model of the failed cell (`None` for the baseline cell).
    pub model: Option<Model>,
    /// Stage the failure occurred in.
    pub stage: FailureStage,
    /// The error or captured panic.
    pub payload: FailurePayload,
    /// Wall time spent before the cell failed (across all attempts).
    pub wall: Duration,
    /// Attempts spent before the failure became permanent (1 when no
    /// retry policy is in effect).
    pub attempts: u32,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let model = self
            .model
            .map_or_else(|| "baseline".to_string(), |m| m.to_string());
        let attempts = if self.attempts > 1 {
            format!(", {} attempts", self.attempts)
        } else {
            String::new()
        };
        write!(
            f,
            "{} / {} / {} [{} stage, {:.1?}{}]: {}",
            self.workload, self.experiment, model, self.stage, self.wall, attempts, self.payload
        )
    }
}

/// Structured summary of every failed cell in a run.
#[derive(Debug, Clone, Default)]
pub struct FailureReport {
    /// Failures in completion order.
    pub failures: Vec<CellFailure>,
}

impl FailureReport {
    /// True when every cell completed.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of failed cells.
    pub fn len(&self) -> usize {
        self.failures.len()
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.failures.is_empty() {
            return writeln!(f, "failure report: all cells completed");
        }
        writeln!(f, "failure report: {} cell(s) failed", self.failures.len())?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// One (experiment, workload) slot of the assembled matrix.
#[derive(Debug)]
pub enum CellOutcome {
    /// Baseline and all three model cells completed.
    Ok(BenchResult),
    /// At least one underlying cell failed; the first recorded failure
    /// for this slot.
    Failed(CellFailure),
    /// Abandoned without running after an earlier failure under
    /// [`FailurePolicy::FailFast`].
    Skipped,
}

impl CellOutcome {
    /// The completed result, if any.
    pub fn ok(&self) -> Option<&BenchResult> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// A full engine run: per-slot outcomes, engine counters, and the
/// failure report.
#[derive(Debug)]
pub struct MatrixRun {
    /// Per-experiment outcomes, in the order the experiments were given;
    /// within each, per-workload outcomes in workload order.
    pub outcomes: Vec<Vec<CellOutcome>>,
    /// Engine accounting (cache hits, per-cell wall times).
    pub stats: EngineStats,
    /// Every contained failure.
    pub report: FailureReport,
    /// True when the run stopped before claiming every cell
    /// ([`MatrixConfig::cell_limit`]); resume from the journal to finish.
    pub interrupted: bool,
}

/// How often (and how patiently) a failing cell is re-run before its
/// failure becomes permanent. Only *plausibly transient* failures are
/// retried: contained panics and watchdog trips
/// ([`SimError::CycleLimit`] / [`SimError::Deadline`]). Typed compile
/// and emulation errors are deterministic and fail immediately.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per cell, including the first (values below 1 are
    /// treated as 1).
    pub max_attempts: u32,
    /// Sleep between attempts of the same cell.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// Full configuration of a durable engine run; the zero-cost default is
/// exactly the plain fault-isolated engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatrixConfig<'a> {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// What to do after a cell fails permanently.
    pub policy: FailurePolicy,
    /// Bounded re-running of transient failures.
    pub retry: RetryPolicy,
    /// Per-cell, per-attempt wall-clock budget, enforced cooperatively by
    /// the simulator alongside its cycle budget.
    pub deadline: Option<Duration>,
    /// Durable journal: completed cells are appended, journaled cells are
    /// reused instead of re-run.
    pub journal: Option<&'a RunJournal>,
    /// Emit a repro bundle for every permanent failure.
    pub triage: Option<&'a TriageConfig>,
    /// Stop claiming cells past this queue index (test/chaos hook: makes
    /// "killed mid-run" deterministic; the run reports `interrupted`).
    pub cell_limit: Option<usize>,
}

/// Matrix results plus the engine's own performance counters (the
/// all-cells-succeeded view; see [`MatrixRun`] for the fault-tolerant
/// one).
#[derive(Debug)]
pub struct MatrixOutput {
    /// Per-experiment results, in the order the experiments were given;
    /// within each, per-workload results in workload order.
    pub figures: Vec<Vec<BenchResult>>,
    /// Engine accounting (cache hits, per-cell wall times).
    pub stats: EngineStats,
}

// ---------------------------------------------------------------------------
// Panic containment: per-cell catch_unwind with a hook-captured message.
// ---------------------------------------------------------------------------

thread_local! {
    /// Identity of the cell this worker thread is currently running;
    /// included in captured panic messages.
    static CELL_IDENTITY: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
    /// Nesting depth of [`catch_cell`] on this thread; the hook only
    /// captures (and silences) panics while it is nonzero.
    static CAPTURE_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    /// Message + location captured by the hook for the most recent panic.
    static CAPTURED_PANIC: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
    /// The last module this worker compiled for its current cell; taken by
    /// failure triage so a simulate-stage repro bundle can dump the
    /// lowered IR that actually failed.
    static LAST_MODULE: std::cell::RefCell<Option<Arc<Module>>> =
        const { std::cell::RefCell::new(None) };
}

static INSTALL_HOOK: Once = Once::new();

/// Renders a panic payload (the `&str`/`String` cases panics overwhelmingly
/// carry).
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Installs (once, process-wide) a panic hook that, while a worker is
/// inside [`catch_cell`], records the message, source location, and cell
/// identity instead of printing a backtrace; panics on all other threads
/// go to the previous hook untouched.
fn install_capture_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CAPTURE_DEPTH.with(std::cell::Cell::get) == 0 {
                prev(info);
                return;
            }
            let mut msg = payload_message(info.payload());
            if let Some(loc) = info.location() {
                msg.push_str(&format!(
                    " (at {}:{}:{})",
                    loc.file(),
                    loc.line(),
                    loc.column()
                ));
            }
            if let Some(cell) = CELL_IDENTITY.with(|c| c.borrow().clone()) {
                msg.push_str(&format!(" [cell {cell}]"));
            }
            CAPTURED_PANIC.with(|p| *p.borrow_mut() = Some(msg));
        }));
    });
}

/// Runs `f`, containing any panic and returning its captured message.
pub(crate) fn catch_cell<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_capture_hook();
    CAPTURE_DEPTH.with(|d| d.set(d.get() + 1));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CAPTURE_DEPTH.with(|d| d.set(d.get() - 1));
    r.map_err(|payload| {
        CAPTURED_PANIC
            .with(|p| p.borrow_mut().take())
            .unwrap_or_else(|| payload_message(&*payload))
    })
}

// ---------------------------------------------------------------------------
// Shared compile cache with failure memoization.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CompileKey {
    workload: usize,
    model: Model,
    issue: u32,
    branches: u32,
}

/// A memoized compile failure, replayed cheaply for every dependent cell.
#[derive(Debug, Clone)]
struct SharedFailure {
    stage: FailureStage,
    payload: FailurePayload,
}

/// A successfully compiled cell: the scheduled module plus its
/// pre-decoded execution stream, produced once right after the compile
/// and shared by every simulation of the same (workload, model, machine)
/// key — the decode cost is paid once per compiled module, not once per
/// simulated cell.
#[derive(Clone)]
struct CompiledUnit {
    module: Arc<Module>,
    decoded: Arc<DecodedModule>,
}

/// One shared once-per-key slot; `Err` marks a memoized failed compile.
type CompileSlot = Arc<OnceLock<Result<CompiledUnit, SharedFailure>>>;

/// One shared per-workload slot for the model-independent front half
/// (frontend → pre-formation optimization → profiling run).
type FrontSlot = Arc<OnceLock<Result<Arc<FrontOutput>, SharedFailure>>>;

/// Each distinct (workload, model, machine) module is compiled exactly
/// once; concurrent requesters block on the same [`OnceLock`] rather than
/// duplicating the work. A failed — or panicking — compile is memoized as
/// failed, so dependent cells skip it instead of re-running (or
/// re-panicking) it.
///
/// Compiles are additionally split at the [`Pipeline::front`] /
/// [`Pipeline::finish`] seam: the front half (including the profiling
/// emulation run, the most expensive pass for emulation-heavy workloads)
/// depends only on the workload, so it runs once per workload and every
/// (model, machine) compile shares it.
struct CompileCache {
    slots: Mutex<HashMap<CompileKey, CompileSlot>>,
    fronts: Mutex<HashMap<usize, FrontSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    front_computes: AtomicU64,
    front_reuses: AtomicU64,
}

pub(crate) fn stage_of(e: &PipelineError) -> FailureStage {
    match e {
        PipelineError::Compile(_)
        | PipelineError::Lint(_)
        | PipelineError::Sched(_)
        | PipelineError::Budget { .. } => FailureStage::Compile,
        PipelineError::Emu(_) => FailureStage::Emulate,
        PipelineError::Sim(_) | PipelineError::Diverged { .. } | PipelineError::Oracle { .. } => {
            FailureStage::Simulate
        }
    }
}

impl CompileCache {
    fn new() -> CompileCache {
        CompileCache {
            slots: Mutex::new(HashMap::new()),
            fronts: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            front_computes: AtomicU64::new(0),
            front_reuses: AtomicU64::new(0),
        }
    }

    /// The front half for workload index `w`, computed once per workload.
    fn get_or_front(
        &self,
        workload: usize,
        w: &Workload,
        pipe: &Pipeline,
    ) -> Result<Arc<FrontOutput>, SharedFailure> {
        let slot = {
            let mut fronts = lock_tolerant(&self.fronts);
            Arc::clone(fronts.entry(workload).or_default())
        };
        let mut fresh = false;
        let front = slot.get_or_init(|| {
            fresh = true;
            match catch_cell(|| pipe.front(&w.source, &w.args)) {
                Ok(Ok(f)) => Ok(Arc::new(f)),
                Ok(Err(e)) => Err(SharedFailure {
                    stage: stage_of(&e),
                    payload: FailurePayload::Error(e),
                }),
                Err(panic_msg) => Err(SharedFailure {
                    stage: FailureStage::Compile,
                    payload: FailurePayload::Panic(panic_msg),
                }),
            }
        });
        if fresh {
            self.front_computes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.front_reuses.fetch_add(1, Ordering::Relaxed);
        }
        front.clone()
    }

    fn get_or_compile(
        &self,
        key: CompileKey,
        w: &Workload,
        model: Model,
        machine: &MachineConfig,
        pipe: &Pipeline,
    ) -> Result<CompiledUnit, SharedFailure> {
        let cell = {
            let mut slots = lock_tolerant(&self.slots);
            Arc::clone(slots.entry(key).or_default())
        };
        let mut fresh = false;
        let module = cell.get_or_init(|| {
            fresh = true;
            // The shared front half: once per workload, then each
            // (model, machine) runs only formation → scheduling. A failed
            // front (frontend error, profiling fault, injected panic) is
            // memoized once and replayed to every dependent key.
            let front = self.get_or_front(key.workload, w, pipe)?;
            // Panics inside the pipeline are contained *here* so the slot
            // is still initialized (as failed) for everyone waiting on it.
            match catch_cell(|| pipe.finish(&front, model, machine)) {
                Ok(Ok(m)) => {
                    let module = Arc::new(m);
                    let decoded = Arc::new(DecodedModule::decode(&module));
                    Ok(CompiledUnit { module, decoded })
                }
                Ok(Err(e)) => Err(SharedFailure {
                    stage: stage_of(&e),
                    payload: FailurePayload::Error(e),
                }),
                Err(panic_msg) => Err(SharedFailure {
                    stage: FailureStage::Compile,
                    payload: FailurePayload::Panic(panic_msg),
                }),
            }
        });
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        module.clone()
    }

    /// Drops memoized *failures* for `key` (and its workload's front half)
    /// so a retry actually recompiles instead of replaying the memo.
    /// Successful slots are kept: concurrent holders of the old `Arc`s
    /// stay valid, and nothing succeeded that a retry should redo.
    fn forget_failed(&self, key: CompileKey) {
        let mut slots = lock_tolerant(&self.slots);
        if slots
            .get(&key)
            .and_then(|s| s.get())
            .is_some_and(Result::is_err)
        {
            slots.remove(&key);
        }
        drop(slots);
        let mut fronts = lock_tolerant(&self.fronts);
        if fronts
            .get(&key.workload)
            .and_then(|s| s.get())
            .is_some_and(Result::is_err)
        {
            fronts.remove(&key.workload);
        }
    }

    /// The successfully compiled module for `key`, if the cache holds one.
    fn module_of(&self, key: CompileKey) -> Option<Arc<Module>> {
        let slot = Arc::clone(lock_tolerant(&self.slots).get(&key)?);
        let module = slot.get()?.as_ref().ok().map(|u| Arc::clone(&u.module));
        module
    }
}

/// Shared failure log; under [`FailurePolicy::FailFast`] the first record
/// also aborts the queue.
struct FailureLog {
    failures: Mutex<Vec<CellFailure>>,
    abort: AtomicBool,
    policy: FailurePolicy,
}

impl FailureLog {
    fn new(policy: FailurePolicy) -> FailureLog {
        FailureLog {
            failures: Mutex::new(Vec::new()),
            abort: AtomicBool::new(false),
            policy,
        }
    }

    fn record(&self, f: CellFailure) {
        lock_tolerant(&self.failures).push(f);
        if self.policy == FailurePolicy::FailFast {
            self.abort.store(true, Ordering::Release);
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    fn into_failures(self) -> Vec<CellFailure> {
        self.failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// One schedulable unit of work.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// Simulate workload `w`'s shared 1-issue superblock denominator.
    Baseline { w: usize },
    /// Simulate workload `w` under experiment `e`'s machine with model `m`.
    Model { e: usize, w: usize, m: usize },
}

impl Cell {
    fn workload(self) -> usize {
        match self {
            Cell::Baseline { w } | Cell::Model { w, .. } => w,
        }
    }
}

/// The machine/simulation parameters a cell runs under — the part of its
/// identity shared by fingerprinting and triage.
struct CellParams {
    experiment: &'static str,
    model: Option<Model>,
    issue: u32,
    branches: u32,
    memory: MemoryModel,
    max_cycles: u64,
}

fn params_of(cell: Cell, exps: &[Experiment]) -> CellParams {
    match cell {
        // The shared denominator: 1-issue, perfect memory, whatever cycle
        // budget the figures agree on (they all use the same default).
        Cell::Baseline { .. } => CellParams {
            experiment: "baseline",
            model: None,
            issue: 1,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: exps.first().map_or(DEFAULT_CYCLE_LIMIT, |e| e.max_cycles),
        },
        Cell::Model { e, m, .. } => CellParams {
            experiment: exps[e].title,
            model: Some(Model::ALL[m]),
            issue: exps[e].issue,
            branches: exps[e].branches,
            memory: exps[e].memory,
            max_cycles: exps[e].max_cycles,
        },
    }
}

fn key_of(cell: Cell, exps: &[Experiment]) -> CompileKey {
    match cell {
        Cell::Baseline { w } => CompileKey {
            workload: w,
            model: Model::Superblock,
            issue: 1,
            branches: 1,
        },
        Cell::Model { e, w, m } => CompileKey {
            workload: w,
            model: Model::ALL[m],
            issue: exps[e].issue,
            branches: exps[e].branches,
        },
    }
}

/// The journal key of a cell: an FNV-1a hash over a canonical string of
/// everything that determines its stats (crate version, the full pipeline
/// config, workload name + source hash + args, experiment, model, and the
/// machine/simulation parameters). See the [`crate::journal`] docs for
/// why the key is deliberately conservative.
fn fingerprint(cell: Cell, exps: &[Experiment], workloads: &[Workload], pipe: &Pipeline) -> String {
    let wl = &workloads[cell.workload()];
    let p = params_of(cell, exps);
    let canonical = format!(
        "v{}|pipe{:016x}|{}|src{:016x}|args{:?}|{}|{}|issue{}|br{}|{:?}|cycles{}",
        env!("CARGO_PKG_VERSION"),
        fnv64(format!("{pipe:?}").as_bytes()),
        wl.name,
        fnv64(wl.source.as_bytes()),
        wl.args,
        p.experiment,
        model_slug(p.model),
        p.issue,
        p.branches,
        p.memory,
        p.max_cycles,
    );
    format!("{:016x}", fnv64(canonical.as_bytes()))
}

/// Fills a result slot. An identical duplicate fill (a lost race between
/// a journal prefill and a concurrent compute of the same cell) is
/// benign; a *mismatched* refill is surfaced as a typed failure — in a
/// long-running service a damaged request stream must become an error
/// report, never the historical worker-aborting `expect`.
fn fill_slot(
    slot: &OnceLock<SimStats>,
    stats: SimStats,
    workload: &str,
    model: Option<Model>,
) -> Result<(), (FailureStage, FailurePayload)> {
    if let Err(rejected) = slot.set(stats) {
        match slot.get() {
            Some(held) if *held == rejected => {}
            held => {
                let detail = format!(
                    "result slot already held {held:?}; refused distinct refill {rejected:?}"
                );
                return Err((
                    FailureStage::Simulate,
                    FailurePayload::Error(PipelineError::Oracle {
                        workload: workload.to_string(),
                        model: model.unwrap_or(Model::Superblock),
                        check: "cell-slot-consistency",
                        detail,
                    }),
                ));
            }
        }
    }
    Ok(())
}

/// Whether a failure is plausibly transient (worth a retry): contained
/// panics and watchdog trips. Typed compile/emulation errors are
/// deterministic — retrying them wastes the budget.
fn retryable(payload: &FailurePayload) -> bool {
    match payload {
        FailurePayload::Panic(_) => true,
        FailurePayload::Error(PipelineError::Sim(
            SimError::CycleLimit { .. } | SimError::Deadline { .. },
        )) => true,
        FailurePayload::Error(_) => false,
    }
}

/// Runs `exps` over the standard workload suite at `scale` with `threads`
/// workers (0 = one per available core). See [`run_matrix_workloads`].
///
/// # Errors
/// Propagates the first pipeline failure; remaining cells are abandoned.
pub fn run_matrix(
    exps: &[Experiment],
    scale: Scale,
    pipe: &Pipeline,
    threads: usize,
) -> Result<Vec<Vec<BenchResult>>, PipelineError> {
    run_matrix_with_stats(exps, scale, pipe, threads).map(|out| out.figures)
}

/// Like [`run_matrix`], but also returns the engine's cache and wall-time
/// counters.
///
/// # Errors
/// Propagates the first pipeline failure; remaining cells are abandoned.
pub fn run_matrix_with_stats(
    exps: &[Experiment],
    scale: Scale,
    pipe: &Pipeline,
    threads: usize,
) -> Result<MatrixOutput, PipelineError> {
    let workloads = hyperpred_workloads::all(scale);
    run_matrix_workloads(exps, &workloads, pipe, threads)
}

/// Fault-isolated engine run over the standard suite at `scale` under
/// `policy`. Never returns an error: failed cells are contained and
/// reported in [`MatrixRun::report`].
pub fn run_matrix_policy(
    exps: &[Experiment],
    scale: Scale,
    pipe: &Pipeline,
    threads: usize,
    policy: FailurePolicy,
) -> MatrixRun {
    let workloads = hyperpred_workloads::all(scale);
    run_matrix_workloads_policy(exps, &workloads, pipe, threads, policy)
}

/// Compatibility wrapper over [`run_matrix_workloads_policy`]: runs under
/// [`FailurePolicy::FailFast`] and surfaces the first failure.
///
/// # Errors
/// Propagates the first pipeline failure; remaining cells are abandoned.
/// A model whose simulated result diverges from the baseline's comes back
/// as [`PipelineError::Diverged`].
///
/// # Panics
/// Panics (like the serial path) if a cell *panicked* — the contained
/// message is re-raised. That is a compiler bug, not an input error.
pub fn run_matrix_workloads(
    exps: &[Experiment],
    workloads: &[Workload],
    pipe: &Pipeline,
    threads: usize,
) -> Result<MatrixOutput, PipelineError> {
    let run = run_matrix_workloads_policy(exps, workloads, pipe, threads, FailurePolicy::FailFast);
    let MatrixRun {
        outcomes,
        stats,
        mut report,
        ..
    } = run;
    if let Some(first) = report.failures.drain(..).next() {
        match first.payload {
            FailurePayload::Error(e) => return Err(e),
            FailurePayload::Panic(msg) => panic!(
                "matrix cell {} / {} panicked: {msg}",
                first.workload, first.experiment
            ),
        }
    }
    let figures = outcomes
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|o| match o {
                    CellOutcome::Ok(r) => r,
                    CellOutcome::Failed(_) | CellOutcome::Skipped => {
                        unreachable!("empty failure report implies all cells completed")
                    }
                })
                .collect()
        })
        .collect();
    Ok(MatrixOutput { figures, stats })
}

/// The engine core: runs every (experiment × workload × model) cell of the
/// matrix over `threads` scoped workers, compiling each distinct module
/// once and simulating each workload's baseline denominator once. Each
/// cell is wrapped in `catch_unwind` and the watchdog budget of
/// [`Experiment::max_cycles`], so one sick cell cannot take down the run.
///
/// Successful cells are bit-identical to calling
/// [`run_experiment`](crate::experiments::run_experiment) per experiment,
/// whatever other cells do.
///
/// A model whose simulated result diverges from the baseline's is a
/// compiler bug, not an input error; it is reported as a typed
/// [`PipelineError::Diverged`] cell failure under either policy (never a
/// panic), so a KeepGoing chaos run keeps every healthy cell.
pub fn run_matrix_workloads_policy(
    exps: &[Experiment],
    workloads: &[Workload],
    pipe: &Pipeline,
    threads: usize,
    policy: FailurePolicy,
) -> MatrixRun {
    run_matrix_configured(
        exps,
        workloads,
        pipe,
        &MatrixConfig {
            threads,
            policy,
            ..MatrixConfig::default()
        },
    )
}

/// The durable engine entry point: [`run_matrix_workloads_policy`] plus
/// the journal/retry/deadline/triage layers of [`MatrixConfig`]. With a
/// default config it is exactly the plain engine.
pub fn run_matrix_configured(
    exps: &[Experiment],
    workloads: &[Workload],
    pipe: &Pipeline,
    cfg: &MatrixConfig<'_>,
) -> MatrixRun {
    let started = Instant::now();
    let policy = cfg.policy;
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.threads
    };

    // Baselines first so the slowest sims start early; then experiment-
    // major model cells, which keeps the duplicate compile keys of
    // machine-sharing figures (8 and 11) far apart in the queue.
    let mut cells: Vec<Cell> = Vec::with_capacity(workloads.len() * (1 + 3 * exps.len()));
    if !exps.is_empty() {
        for w in 0..workloads.len() {
            cells.push(Cell::Baseline { w });
        }
    }
    for e in 0..exps.len() {
        for w in 0..workloads.len() {
            for m in 0..Model::ALL.len() {
                cells.push(Cell::Model { e, w, m });
            }
        }
    }

    // Fingerprints are only needed when a journal is wired in; they are
    // precomputed here (aligned with `cells`) so workers never hash.
    let fps: Option<Vec<String>> = cfg.journal.map(|_| {
        cells
            .iter()
            .map(|&c| fingerprint(c, exps, workloads, pipe))
            .collect()
    });

    let cache = CompileCache::new();
    let log = FailureLog::new(policy);
    let next = AtomicUsize::new(0);
    let interrupted = AtomicBool::new(false);
    let journal_hits = AtomicU64::new(0);
    let journal_appends = AtomicU64::new(0);
    let prefilled_baseline = AtomicU64::new(0);
    let prefilled_model = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let baseline: Vec<OnceLock<SimStats>> = (0..workloads.len()).map(|_| OnceLock::new()).collect();
    let model_stats: Vec<OnceLock<SimStats>> = (0..exps.len() * workloads.len() * 3)
        .map(|_| OnceLock::new())
        .collect();
    let cell_stats: Mutex<Vec<CellStat>> = Mutex::new(Vec::with_capacity(cells.len()));

    // Executes one cell; typed failures come back as Err, panics unwind to
    // the catch_cell wrapper in the worker loop.
    let exec_cell = |cell: Cell| -> Result<(), (FailureStage, FailurePayload)> {
        match cell {
            Cell::Baseline { w } => {
                let wl = &workloads[w];
                let key = CompileKey {
                    workload: w,
                    model: Model::Superblock,
                    issue: 1,
                    branches: 1,
                };
                let unit = cache
                    .get_or_compile(
                        key,
                        wl,
                        Model::Superblock,
                        &MachineConfig::one_issue(),
                        pipe,
                    )
                    .map_err(|f| (f.stage, f.payload))?;
                LAST_MODULE.with(|m| *m.borrow_mut() = Some(Arc::clone(&unit.module)));
                if pipe.fault_injection {
                    crate::faults::maybe_injected_sim_panic(&unit.module);
                }
                // All experiments share one denominator config (1-issue,
                // perfect memory, default predictor), so any experiment's
                // baseline_sim() works; use the first for exactness.
                let mut sim_cfg = exps.first().map_or_else(
                    || Experiment::fig8().baseline_sim(),
                    Experiment::baseline_sim,
                );
                if let Some(d) = cfg.deadline {
                    sim_cfg.deadline = Some(Instant::now() + d);
                }
                let stats = simulate_decoded(
                    &unit.module,
                    &unit.decoded,
                    "main",
                    &entry_args(&wl.args),
                    MachineConfig::one_issue(),
                    sim_cfg,
                )
                .map_err(|e| (FailureStage::Simulate, FailurePayload::Error(e.into())))?;
                fill_slot(&baseline[w], stats, wl.name, None)?;
                Ok(())
            }
            Cell::Model { e, w, m } => {
                let wl = &workloads[w];
                let exp = &exps[e];
                let model = Model::ALL[m];
                let key = CompileKey {
                    workload: w,
                    model,
                    issue: exp.issue,
                    branches: exp.branches,
                };
                let unit = cache
                    .get_or_compile(key, wl, model, &exp.machine(), pipe)
                    .map_err(|f| (f.stage, f.payload))?;
                LAST_MODULE.with(|m| *m.borrow_mut() = Some(Arc::clone(&unit.module)));
                if pipe.fault_injection {
                    crate::faults::maybe_injected_sim_panic(&unit.module);
                }
                let mut sim_cfg = exp.sim();
                if let Some(d) = cfg.deadline {
                    sim_cfg.deadline = Some(Instant::now() + d);
                }
                let stats = simulate_decoded(
                    &unit.module,
                    &unit.decoded,
                    "main",
                    &entry_args(&wl.args),
                    exp.machine(),
                    sim_cfg,
                )
                .map_err(|e| (FailureStage::Simulate, FailurePayload::Error(e.into())))?;
                let idx = (e * workloads.len() + w) * 3 + m;
                fill_slot(&model_stats[idx], stats, wl.name, Some(model))?;
                Ok(())
            }
        }
    };

    // Writes a repro bundle for a permanently failed cell; bundle errors
    // are reported, never fatal (triage must not take down the run).
    let emit_triage = |cell: Cell, stage: FailureStage, payload: &FailurePayload, attempts: u32| {
        let Some(tcfg) = cfg.triage else { return };
        let wl = &workloads[cell.workload()];
        let p = params_of(cell, exps);
        let module = LAST_MODULE.with(|m| m.borrow_mut().take());
        let repro = ReproCell {
            workload: wl.name.to_string(),
            args: wl.args.clone(),
            experiment: p.experiment.to_string(),
            model: p.model,
            issue: p.issue,
            branches: p.branches,
            memory: p.memory,
            max_cycles: p.max_cycles,
            fault_injection: pipe.fault_injection,
            sabotage: pipe.sabotage,
            stage,
            signature: triage::signature(payload),
            fingerprint: fingerprint(cell, exps, workloads, pipe),
            attempts,
        };
        match triage::write_bundle(
            tcfg,
            &repro,
            &wl.source,
            &payload.to_string(),
            module.as_deref(),
        ) {
            Ok(dir) => eprintln!("triage: wrote repro bundle {}", dir.display()),
            Err(e) => eprintln!(
                "triage: could not write bundle for {} / {}: {e}",
                wl.name, p.experiment
            ),
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..threads.min(cells.len()).max(1) {
            scope.spawn(|| {
                loop {
                    if log.aborted() {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i).copied() else {
                        return;
                    };
                    if cfg.cell_limit.is_some_and(|limit| i >= limit) {
                        interrupted.store(true, Ordering::Release);
                        return;
                    }
                    let (workload, experiment, model) = match cell {
                        Cell::Baseline { w } => (workloads[w].name, "baseline", None),
                        Cell::Model { e, w, m } => {
                            (workloads[w].name, exps[e].title, Some(Model::ALL[m]))
                        }
                    };
                    // Resume: a journaled cell's stats are copied back
                    // bit-identically; nothing about it re-runs.
                    if let (Some(journal), Some(fps)) = (cfg.journal, fps.as_deref()) {
                        if let Some(stats) = journal.lookup(&fps[i]) {
                            let filled = match cell {
                                Cell::Baseline { w } => {
                                    let r = fill_slot(&baseline[w], stats, workload, None);
                                    if r.is_ok() {
                                        prefilled_baseline.fetch_add(1, Ordering::Relaxed);
                                    }
                                    r
                                }
                                Cell::Model { e, w, m } => {
                                    let idx = (e * workloads.len() + w) * 3 + m;
                                    let r = fill_slot(&model_stats[idx], stats, workload, model);
                                    if r.is_ok() {
                                        prefilled_model.fetch_add(1, Ordering::Relaxed);
                                    }
                                    r
                                }
                            };
                            match filled {
                                Ok(()) => {
                                    journal_hits.fetch_add(1, Ordering::Relaxed);
                                }
                                // A prefill clashing with a distinct held
                                // result means the journal (or the cell
                                // schedule) is damaged: report it as a
                                // failed cell, don't abort the worker.
                                Err((stage, payload)) => log.record(CellFailure {
                                    workload,
                                    experiment,
                                    model,
                                    stage,
                                    payload,
                                    wall: Duration::ZERO,
                                    attempts: 1,
                                }),
                            }
                            continue;
                        }
                    }
                    CELL_IDENTITY.with(|c| {
                        *c.borrow_mut() = Some(match model {
                            Some(m) => format!("{workload} / {experiment} / {m}"),
                            None => format!("{workload} / baseline"),
                        });
                    });
                    let t = Instant::now();
                    let mut attempts = 0u32;
                    let caught = loop {
                        attempts += 1;
                        LAST_MODULE.with(|m| *m.borrow_mut() = None);
                        let caught = catch_cell(|| exec_cell(cell));
                        let transient = match &caught {
                            Ok(Ok(())) => break caught,
                            Ok(Err((_, payload))) => retryable(payload),
                            // Contained panics are presumed transient-capable.
                            Err(_) => true,
                        };
                        if !transient || attempts >= cfg.retry.max_attempts.max(1) {
                            break caught;
                        }
                        // A memoized failure must be forgotten, or the
                        // retry would just replay the memo.
                        cache.forget_failed(key_of(cell, exps));
                        retries.fetch_add(1, Ordering::Relaxed);
                        if !cfg.retry.backoff.is_zero() {
                            std::thread::sleep(cfg.retry.backoff);
                        }
                    };
                    let wall = t.elapsed();
                    CELL_IDENTITY.with(|c| *c.borrow_mut() = None);
                    match caught {
                        Ok(Ok(())) => {
                            lock_tolerant(&cell_stats).push(CellStat {
                                workload,
                                experiment,
                                model,
                                wall,
                            });
                            if let (Some(journal), Some(fps)) = (cfg.journal, fps.as_deref()) {
                                let stats = match cell {
                                    Cell::Baseline { w } => baseline[w].get(),
                                    Cell::Model { e, w, m } => {
                                        model_stats[(e * workloads.len() + w) * 3 + m].get()
                                    }
                                };
                                if let Some(stats) = stats {
                                    let appended = journal.record(&JournalEntry {
                                        fingerprint: &fps[i],
                                        workload,
                                        experiment,
                                        model,
                                        stats,
                                    });
                                    match appended {
                                        Ok(RecordOutcome::Appended) => {
                                            journal_appends.fetch_add(1, Ordering::Relaxed);
                                        }
                                        // Identical re-record (e.g. two
                                        // resumed runs sharing a journal):
                                        // nothing to count.
                                        Ok(RecordOutcome::Duplicate) => {}
                                        // The key now serves nobody; the
                                        // conflict is counted on the
                                        // journal and reported by drivers.
                                        Ok(RecordOutcome::Conflict) => eprintln!(
                                            "journal: fingerprint conflict on {} \
                                             ({workload} / {experiment}); key quarantined",
                                            &fps[i]
                                        ),
                                        // Durability degrades, the run
                                        // continues (e.g. disk full).
                                        Err(e) => eprintln!("journal: append failed: {e}"),
                                    }
                                }
                            }
                        }
                        Ok(Err((stage, payload))) => {
                            emit_triage(cell, stage, &payload, attempts);
                            log.record(CellFailure {
                                workload,
                                experiment,
                                model,
                                stage,
                                payload,
                                wall,
                                attempts,
                            });
                        }
                        // A panic that escaped the compile cache's own
                        // containment happened after compilation — in the
                        // simulator or its sink.
                        Err(panic_msg) => {
                            let payload = FailurePayload::Panic(panic_msg);
                            emit_triage(cell, FailureStage::Simulate, &payload, attempts);
                            log.record(CellFailure {
                                workload,
                                experiment,
                                model,
                                stage: FailureStage::Simulate,
                                payload,
                                wall,
                                attempts,
                            });
                        }
                    }
                }
            });
        }
    });

    let mut failures = log.into_failures();

    // Assemble per-figure outcomes. Slots whose four cells all completed
    // become `Ok`; slots touched by a failure reference it; slots
    // abandoned by FailFast become `Skipped`.
    let mut outcomes = Vec::with_capacity(exps.len());
    for (e, exp) in exps.iter().enumerate() {
        let mut row: Vec<CellOutcome> = Vec::with_capacity(workloads.len());
        for (w, wl) in workloads.iter().enumerate() {
            let base = baseline[w].get();
            let slots: [Option<&SimStats>; 3] =
                std::array::from_fn(|m| model_stats[(e * workloads.len() + w) * 3 + m].get());
            let outcome = match (base, slots[0], slots[1], slots[2]) {
                (Some(base), Some(m0), Some(m1), Some(m2)) => {
                    let models: [SimStats; 3] = [m0.clone(), m1.clone(), m2.clone()];
                    match models
                        .iter()
                        .enumerate()
                        .find(|(_, s)| s.ret != base.ret)
                        .map(|(m, s)| (Model::ALL[m], s.ret))
                    {
                        None => CellOutcome::Ok(BenchResult {
                            name: wl.name,
                            base: base.clone(),
                            models,
                        }),
                        Some((m, got)) => {
                            // A typed failure under either policy:
                            // FailFast surfaces it as `Err(Diverged)`
                            // through the compatibility wrapper, KeepGoing
                            // contains it to this cell.
                            let failure = CellFailure {
                                workload: wl.name,
                                experiment: exp.title,
                                model: Some(m),
                                stage: FailureStage::Simulate,
                                payload: FailurePayload::Error(PipelineError::Diverged {
                                    workload: wl.name.to_string(),
                                    model: m,
                                    got,
                                    want: base.ret,
                                }),
                                wall: Duration::ZERO,
                                attempts: 1,
                            };
                            // Divergence is only detectable here, after
                            // both sides ran; its bundle gets the module
                            // straight from the compile cache.
                            let midx = Model::ALL.iter().position(|&x| x == m).unwrap_or(0);
                            let cell = Cell::Model { e, w, m: midx };
                            if let Some(module) = cache.module_of(key_of(cell, exps)) {
                                LAST_MODULE.with(|slot| *slot.borrow_mut() = Some(module));
                            }
                            emit_triage(cell, FailureStage::Simulate, &failure.payload, 1);
                            failures.push(failure.clone());
                            CellOutcome::Failed(failure)
                        }
                    }
                }
                _ => {
                    // Reference the first failure belonging to this slot
                    // (its own cells or the shared baseline).
                    let owned = failures.iter().find(|f| {
                        f.workload == wl.name
                            && (f.experiment == exp.title || f.experiment == "baseline")
                    });
                    match owned {
                        Some(f) => CellOutcome::Failed(f.clone()),
                        None => CellOutcome::Skipped,
                    }
                }
            };
            row.push(outcome);
        }
        outcomes.push(row);
    }

    // Journal-prefilled slots hold results too, but nothing was simulated
    // for them — they count as journal hits, not sims.
    let baseline_sims = baseline.iter().filter(|b| b.get().is_some()).count() as u64
        - prefilled_baseline.load(Ordering::Relaxed);
    let model_sims = model_stats.iter().filter(|m| m.get().is_some()).count() as u64
        - prefilled_model.load(Ordering::Relaxed);
    let stats = EngineStats {
        threads,
        wall: started.elapsed(),
        compile_hits: cache.hits.load(Ordering::Relaxed),
        compile_misses: cache.misses.load(Ordering::Relaxed),
        baseline_sims,
        baseline_reuses: (exps.len().saturating_sub(1) as u64) * baseline_sims,
        model_sims,
        front_computes: cache.front_computes.load(Ordering::Relaxed),
        front_reuses: cache.front_reuses.load(Ordering::Relaxed),
        journal_hits: journal_hits.load(Ordering::Relaxed),
        journal_appends: journal_appends.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        cells: cell_stats
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    };
    MatrixRun {
        outcomes,
        stats,
        report: FailureReport { failures },
        interrupted: interrupted.load(Ordering::Acquire),
    }
}

// ---------------------------------------------------------------------------
// Single-cell request path: the daemon's unit of work.
// ---------------------------------------------------------------------------

/// One self-contained compile-and-simulate request: everything a client
/// has to say to get a [`SimStats`] back. This is the daemon's unit of
/// work — unlike the matrix engine's [`Cell`], it carries its own source
/// text and machine parameters instead of indexing into a preloaded
/// workload/experiment table.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRequest {
    /// Client-chosen name (reporting only; the fingerprint is the key).
    pub name: String,
    /// MiniC source text.
    pub source: String,
    /// Arguments to `main` (after the hidden stack pointer).
    pub args: Vec<i64>,
    /// Model to compile and simulate under.
    pub model: Model,
    /// Issue width of the simulated machine (1..=[`MAX_REQUEST_ISSUE`]).
    pub issue: u32,
    /// Branch slots per cycle (1..=issue).
    pub branches: u32,
    /// Memory hierarchy.
    pub memory: MemoryModel,
    /// Cycle watchdog budget (≥ 1).
    pub max_cycles: u64,
}

/// Upper bound a request may ask for as issue width / branch slots. The
/// paper's widest machine is 8-issue; 64 leaves generous sweep headroom
/// while keeping a hostile request from allocating absurd schedules.
pub const MAX_REQUEST_ISSUE: u32 = 64;

impl CellRequest {
    /// Validates the machine/simulation parameters *before* they reach
    /// code that asserts on them ([`MachineConfig::new`] panics on a zero
    /// width). A malformed request must become a typed error the service
    /// can report, never a worker abort.
    ///
    /// # Errors
    /// A [`PipelineError::Compile`] describing the first bad field.
    pub fn validate(&self) -> Result<(), PipelineError> {
        let bad = |msg: String| Err(PipelineError::Compile(CompileError::new(0, 0, msg)));
        if self.source.trim().is_empty() {
            return bad("request: empty source".to_string());
        }
        if self.issue == 0 || self.issue > MAX_REQUEST_ISSUE {
            return bad(format!(
                "request: issue width {} outside 1..={MAX_REQUEST_ISSUE}",
                self.issue
            ));
        }
        if self.branches == 0 || self.branches > self.issue {
            return bad(format!(
                "request: branch slots {} outside 1..=issue ({})",
                self.branches, self.issue
            ));
        }
        if self.max_cycles == 0 {
            return bad("request: max_cycles must be >= 1".to_string());
        }
        Ok(())
    }
}

/// How patient the request path is: bounded retries of transient
/// failures, a per-attempt wall-clock deadline, and whether the
/// budget-degradation ladder may trade optimization for completion.
#[derive(Debug, Clone, Copy)]
pub struct RequestConfig {
    /// Bounded re-running of transient failures (same semantics as the
    /// matrix engine's [`MatrixConfig::retry`]).
    pub retry: RetryPolicy,
    /// Per-attempt wall-clock budget, enforced cooperatively by the
    /// simulator alongside its cycle budget.
    pub deadline: Option<Duration>,
    /// When true, a tripped compile budget degrades the cell through
    /// [`Pipeline::finish_degraded`] instead of failing it.
    pub degrade: bool,
}

impl Default for RequestConfig {
    fn default() -> RequestConfig {
        RequestConfig {
            retry: RetryPolicy::default(),
            deadline: None,
            degrade: true,
        }
    }
}

/// A permanently failed request: the owned counterpart of
/// [`CellFailure`] (whose `&'static str` fields fit the preloaded matrix
/// tables, not client-supplied names).
#[derive(Debug, Clone)]
pub struct RequestFailure {
    /// Stage the failure occurred in.
    pub stage: FailureStage,
    /// The error or captured panic.
    pub payload: FailurePayload,
    /// Attempts spent before the failure became permanent.
    pub attempts: u32,
    /// Wall time spent across all attempts.
    pub wall: Duration,
}

impl fmt::Display for RequestFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attempts = if self.attempts > 1 {
            format!(", {} attempts", self.attempts)
        } else {
            String::new()
        };
        write!(
            f,
            "[{} stage, {:.1?}{}]: {}",
            self.stage, self.wall, attempts, self.payload
        )
    }
}

/// The content address of a request: the same deliberately conservative
/// canonical-string FNV scheme as the matrix [`fingerprint`] (see the
/// [`crate::journal`] docs), with the experiment slot naming the service
/// namespace *and* the degradation policy — a degraded and a strict
/// compile of the same source may legitimately produce different stats,
/// so they must never share a key.
pub fn request_fingerprint(req: &CellRequest, pipe: &Pipeline, degrade: bool) -> String {
    let namespace = if degrade {
        "service-degrade"
    } else {
        "service-strict"
    };
    let canonical = format!(
        "v{}|pipe{:016x}|{}|src{:016x}|args{:?}|{}|{}|issue{}|br{}|{:?}|cycles{}",
        env!("CARGO_PKG_VERSION"),
        fnv64(format!("{pipe:?}").as_bytes()),
        req.name,
        fnv64(req.source.as_bytes()),
        req.args,
        namespace,
        model_slug(Some(req.model)),
        req.issue,
        req.branches,
        req.memory,
        req.max_cycles,
    );
    format!("{:016x}", fnv64(canonical.as_bytes()))
}

/// Runs one [`CellRequest`] end to end with the engine's full containment
/// stack: parameter validation, per-attempt panic capture ([`catch_cell`]),
/// bounded retries of transient failures, the cooperative wall-clock
/// deadline, and (optionally) the budget-degradation ladder. A
/// pathological input degrades or fails *this request* — never the
/// calling worker.
///
/// # Errors
/// A [`RequestFailure`] carrying the typed payload, attempt count, and
/// wall time of the permanent failure.
pub fn run_request(
    req: &CellRequest,
    pipe: &Pipeline,
    cfg: &RequestConfig,
) -> Result<(SimStats, Degradation), RequestFailure> {
    let started = Instant::now();
    if let Err(e) = req.validate() {
        return Err(RequestFailure {
            stage: FailureStage::Compile,
            payload: FailurePayload::Error(e),
            attempts: 1,
            wall: started.elapsed(),
        });
    }
    let machine = MachineConfig::new(req.issue, req.branches);

    // One attempt: compile (front + finish) and simulate, each phase
    // under its own panic containment so a captured panic is attributed
    // to the right stage.
    let attempt = || -> Result<(SimStats, Degradation), (FailureStage, FailurePayload)> {
        let compiled = catch_cell(|| -> Result<(Module, Degradation), PipelineError> {
            let front = pipe.front(&req.source, &req.args)?;
            if cfg.degrade {
                pipe.finish_degraded(&front, req.model, &machine)
            } else {
                let module = pipe.finish(&front, req.model, &machine)?;
                Ok((module, Degradation::default()))
            }
        });
        let (module, degradation) = match compiled {
            Ok(Ok(out)) => out,
            Ok(Err(e)) => return Err((stage_of(&e), FailurePayload::Error(e))),
            Err(panic_msg) => {
                return Err((FailureStage::Compile, FailurePayload::Panic(panic_msg)))
            }
        };
        let simmed = catch_cell(|| -> Result<SimStats, PipelineError> {
            let decoded = Arc::new(DecodedModule::decode(&module));
            let mut sim_cfg = SimConfig {
                memory: req.memory,
                max_cycles: req.max_cycles,
                ..SimConfig::default()
            };
            if let Some(d) = cfg.deadline {
                sim_cfg.deadline = Some(Instant::now() + d);
            }
            Ok(simulate_decoded(
                &module,
                &decoded,
                "main",
                &entry_args(&req.args),
                machine,
                sim_cfg,
            )?)
        });
        match simmed {
            Ok(Ok(stats)) => Ok((stats, degradation)),
            Ok(Err(e)) => Err((stage_of(&e), FailurePayload::Error(e))),
            Err(panic_msg) => Err((FailureStage::Simulate, FailurePayload::Panic(panic_msg))),
        }
    };

    CELL_IDENTITY.with(|c| {
        *c.borrow_mut() = Some(format!("{} / service / {}", req.name, req.model));
    });
    let mut attempts = 0u32;
    let result = loop {
        attempts += 1;
        match attempt() {
            Ok(out) => break Ok(out),
            Err((stage, payload)) => {
                if retryable(&payload) && attempts < cfg.retry.max_attempts.max(1) {
                    if !cfg.retry.backoff.is_zero() {
                        std::thread::sleep(cfg.retry.backoff);
                    }
                    continue;
                }
                break Err(RequestFailure {
                    stage,
                    payload,
                    attempts,
                    wall: started.elapsed(),
                });
            }
        }
    };
    CELL_IDENTITY.with(|c| *c.borrow_mut() = None);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_empty() {
        let out =
            run_matrix_workloads(&[], &[], &Pipeline::default(), 2).expect("empty matrix runs");
        assert!(out.figures.is_empty());
        assert_eq!(out.stats.compile_hits + out.stats.compile_misses, 0);
    }

    #[test]
    fn compile_errors_propagate_not_panic() {
        let bad = Workload {
            name: "bad",
            description: "unparseable",
            source: "int main( {".to_string(),
            args: Vec::new(),
        };
        let err = run_matrix_workloads(&[Experiment::fig8()], &[bad], &Pipeline::default(), 2);
        assert!(err.is_err(), "syntax error must surface as PipelineError");
    }

    #[test]
    fn keep_going_reports_instead_of_erroring() {
        let bad = Workload {
            name: "bad",
            description: "unparseable",
            source: "int main( {".to_string(),
            args: Vec::new(),
        };
        let good = Workload {
            name: "good",
            description: "healthy neighbor",
            source: "int main() { int i; int s; s = 0;
                     for (i = 0; i < 50; i += 1) { s += i; } return s; }"
                .to_string(),
            args: Vec::new(),
        };
        let run = run_matrix_workloads_policy(
            &[Experiment::fig8()],
            &[bad, good],
            &Pipeline::default(),
            2,
            FailurePolicy::KeepGoing,
        );
        assert!(!run.report.is_empty());
        assert!(run
            .report
            .failures
            .iter()
            .all(|f| f.workload == "bad" && f.stage == FailureStage::Compile));
        assert!(run.outcomes[0][0].ok().is_none(), "bad slot failed");
        assert!(run.outcomes[0][1].ok().is_some(), "good slot completed");
    }

    #[test]
    fn cell_limit_marks_run_interrupted() {
        let good = Workload {
            name: "good",
            description: "healthy",
            source: "int main() { int i; int s; s = 0;
                     for (i = 0; i < 50; i += 1) { s += i; } return s; }"
                .to_string(),
            args: Vec::new(),
        };
        let run = run_matrix_configured(
            &[Experiment::fig8()],
            &[good],
            &Pipeline::default(),
            &MatrixConfig {
                threads: 1,
                policy: FailurePolicy::KeepGoing,
                cell_limit: Some(2),
                ..MatrixConfig::default()
            },
        );
        assert!(
            run.interrupted,
            "hitting the cell limit reports interruption"
        );
        assert!(
            run.stats.cells.len() <= 2,
            "no cell past the limit may have run"
        );
    }
}
