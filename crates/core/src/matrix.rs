//! Parallel experiment engine: runs the paper's full figure matrix as a
//! work queue of independent (workload, model, experiment) cells.
//!
//! The paper's evaluation is embarrassingly parallel — 15 workloads × 3
//! models × 4 machine configurations, each an independent compile +
//! emulate + cycle-simulate job — but a naive loop both serializes the
//! cells and repeats work across figures:
//!
//! * the same (source, model, machine) module is recompiled per figure
//!   (Figures 8 and 11 share an 8-issue/1-branch machine, and every figure
//!   compiles the 1-issue superblock baseline), and
//! * the fixed 1-issue perfect-memory baseline — the denominator of every
//!   speedup bar — is re-simulated per figure.
//!
//! This engine fixes both: a [`CompileCache`] keyed by (workload, model,
//! machine) hands out `Arc<Module>`s compiled exactly once, a baseline
//! memo simulates each workload's denominator once, and a
//! `std::thread::scope` work queue spreads the remaining cells over
//! `threads` workers. Results are bit-identical to the serial
//! [`run_experiment`](crate::experiments::run_experiment) path because
//! every pass and the simulator are deterministic; the engine only
//! deduplicates and reorders work, it never changes it.

use crate::experiments::{BenchResult, Experiment};
use crate::pipeline::{Model, Pipeline, PipelineError};
use hyperpred_ir::Module;
use hyperpred_lang::lower::entry_args;
use hyperpred_sched::MachineConfig;
use hyperpred_sim::{simulate, SimStats};
use hyperpred_workloads::{Scale, Workload};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Wall-time and cache accounting for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the matrix run.
    pub wall: Duration,
    /// Compilations served from the cache instead of rerun.
    pub compile_hits: u64,
    /// Compilations actually performed (exactly once per distinct
    /// (workload, model, machine) triple).
    pub compile_misses: u64,
    /// Baseline (1-issue superblock, perfect memory) simulations run —
    /// one per workload, however many figures share them.
    pub baseline_sims: u64,
    /// Times a figure reused a memoized baseline instead of re-simulating.
    pub baseline_reuses: u64,
    /// Model-cell simulations run.
    pub model_sims: u64,
    /// Per-cell wall times, in completion order.
    pub cells: Vec<CellStat>,
}

impl EngineStats {
    /// Cells a serial figure-at-a-time loop would have run (each figure
    /// recompiling and re-simulating its own baseline).
    pub fn serial_equivalent_cells(&self) -> u64 {
        self.baseline_sims + self.baseline_reuses + self.model_sims
    }

    /// One-paragraph human summary for CLI output.
    pub fn summary(&self) -> String {
        let cell_wall: Duration = self.cells.iter().map(|c| c.wall).sum();
        format!(
            "engine: {} cells in {:.2?} on {} thread(s) ({:.2?} of cell work; {:.1}x packing)\n\
             compile cache: {} misses, {} hits; baseline memo: {} simulated, {} reused\n\
             serial loop would run {} cells; the engine ran {}",
            self.cells.len(),
            self.wall,
            self.threads,
            cell_wall,
            cell_wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
            self.compile_misses,
            self.compile_hits,
            self.baseline_sims,
            self.baseline_reuses,
            self.serial_equivalent_cells(),
            self.baseline_sims + self.model_sims,
        )
    }
}

/// Wall time of one scheduled cell.
#[derive(Debug, Clone)]
pub struct CellStat {
    /// Workload name.
    pub workload: &'static str,
    /// Figure title, or `"baseline"` for the shared denominator cell.
    pub experiment: &'static str,
    /// Model simulated (`None` for the baseline cell).
    pub model: Option<Model>,
    /// Wall time spent on the cell (compile + simulate).
    pub wall: Duration,
}

impl fmt::Display for CellStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.model {
            Some(m) => write!(
                f,
                "{:>9} {:<12} {:>10.1?}  {}",
                self.workload,
                m.to_string(),
                self.wall,
                self.experiment
            ),
            None => write!(
                f,
                "{:>9} {:<12} {:>10.1?}  shared denominator",
                self.workload, "baseline", self.wall
            ),
        }
    }
}

/// Matrix results plus the engine's own performance counters.
#[derive(Debug)]
pub struct MatrixOutput {
    /// Per-experiment results, in the order the experiments were given;
    /// within each, per-workload results in workload order.
    pub figures: Vec<Vec<BenchResult>>,
    /// Engine accounting (cache hits, per-cell wall times).
    pub stats: EngineStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CompileKey {
    workload: usize,
    model: Model,
    issue: u32,
    branches: u32,
}

/// One shared once-per-key slot; `None` marks a failed compile.
type CompileSlot = Arc<OnceLock<Option<Arc<Module>>>>;

/// Each distinct (workload, model, machine) module is compiled exactly
/// once; concurrent requesters block on the same [`OnceLock`] rather than
/// duplicating the work. A failed compile parks `None` in the slot — the
/// error itself travels through [`ErrorSlot`] and aborts the run.
struct CompileCache {
    slots: Mutex<HashMap<CompileKey, CompileSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    fn new() -> CompileCache {
        CompileCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_compile(
        &self,
        key: CompileKey,
        w: &Workload,
        model: Model,
        machine: &MachineConfig,
        pipe: &Pipeline,
        errors: &ErrorSlot,
    ) -> Option<Arc<Module>> {
        let cell = {
            let mut slots = self.slots.lock().expect("compile cache poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut fresh = false;
        let module = cell.get_or_init(|| {
            fresh = true;
            match pipe.compile(&w.source, &w.args, model, machine) {
                Ok(m) => Some(Arc::new(m)),
                Err(e) => {
                    errors.record(e);
                    None
                }
            }
        });
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        module.clone()
    }
}

/// First pipeline failure wins; everything after it is abandoned.
struct ErrorSlot {
    first: Mutex<Option<PipelineError>>,
    abort: AtomicBool,
}

impl ErrorSlot {
    fn new() -> ErrorSlot {
        ErrorSlot {
            first: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    fn record(&self, e: PipelineError) {
        let mut slot = self.first.lock().expect("error slot poisoned");
        slot.get_or_insert(e);
        self.abort.store(true, Ordering::Release);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    fn take(self) -> Option<PipelineError> {
        self.first.into_inner().expect("error slot poisoned")
    }
}

/// One schedulable unit of work.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// Simulate workload `w`'s shared 1-issue superblock denominator.
    Baseline { w: usize },
    /// Simulate workload `w` under experiment `e`'s machine with model `m`.
    Model { e: usize, w: usize, m: usize },
}

/// Runs `exps` over the standard workload suite at `scale` with `threads`
/// workers (0 = one per available core). See [`run_matrix_workloads`].
///
/// # Errors
/// Propagates the first pipeline failure; remaining cells are abandoned.
pub fn run_matrix(
    exps: &[Experiment],
    scale: Scale,
    pipe: &Pipeline,
    threads: usize,
) -> Result<Vec<Vec<BenchResult>>, PipelineError> {
    run_matrix_with_stats(exps, scale, pipe, threads).map(|out| out.figures)
}

/// Like [`run_matrix`], but also returns the engine's cache and wall-time
/// counters.
///
/// # Errors
/// Propagates the first pipeline failure; remaining cells are abandoned.
pub fn run_matrix_with_stats(
    exps: &[Experiment],
    scale: Scale,
    pipe: &Pipeline,
    threads: usize,
) -> Result<MatrixOutput, PipelineError> {
    let workloads = hyperpred_workloads::all(scale);
    run_matrix_workloads(exps, &workloads, pipe, threads)
}

/// The engine core: runs every (experiment × workload × model) cell of the
/// matrix over `threads` scoped workers, compiling each distinct module
/// once and simulating each workload's baseline denominator once.
///
/// Results are bit-identical to calling
/// [`run_experiment`](crate::experiments::run_experiment) per experiment.
///
/// # Errors
/// Propagates the first pipeline failure; remaining cells are abandoned.
///
/// # Panics
/// Panics (like the serial path) if a model's simulated program result
/// diverges from the baseline's — that is a compiler bug, not an input
/// error.
pub fn run_matrix_workloads(
    exps: &[Experiment],
    workloads: &[Workload],
    pipe: &Pipeline,
    threads: usize,
) -> Result<MatrixOutput, PipelineError> {
    let started = Instant::now();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };

    // Baselines first so the slowest sims start early; then experiment-
    // major model cells, which keeps the duplicate compile keys of
    // machine-sharing figures (8 and 11) far apart in the queue.
    let mut cells: Vec<Cell> = Vec::with_capacity(workloads.len() * (1 + 3 * exps.len()));
    if !exps.is_empty() {
        for w in 0..workloads.len() {
            cells.push(Cell::Baseline { w });
        }
    }
    for e in 0..exps.len() {
        for w in 0..workloads.len() {
            for m in 0..Model::ALL.len() {
                cells.push(Cell::Model { e, w, m });
            }
        }
    }

    let cache = CompileCache::new();
    let errors = ErrorSlot::new();
    let next = AtomicUsize::new(0);
    let baseline: Vec<OnceLock<SimStats>> = (0..workloads.len()).map(|_| OnceLock::new()).collect();
    let model_stats: Vec<OnceLock<SimStats>> = (0..exps.len() * workloads.len() * 3)
        .map(|_| OnceLock::new())
        .collect();
    let cell_stats: Mutex<Vec<CellStat>> = Mutex::new(Vec::with_capacity(cells.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads.min(cells.len()).max(1) {
            scope.spawn(|| {
                loop {
                    if errors.aborted() {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i).copied() else {
                        return;
                    };
                    let t = Instant::now();
                    match cell {
                        Cell::Baseline { w } => {
                            let wl = &workloads[w];
                            let key = CompileKey {
                                workload: w,
                                model: Model::Superblock,
                                issue: 1,
                                branches: 1,
                            };
                            let Some(module) = cache.get_or_compile(
                                key,
                                wl,
                                Model::Superblock,
                                &MachineConfig::one_issue(),
                                pipe,
                                &errors,
                            ) else {
                                continue;
                            };
                            // All experiments share one denominator config
                            // (1-issue, perfect memory, default predictor),
                            // so any experiment's baseline_sim() works; use
                            // the first for exactness.
                            match simulate(
                                &module,
                                "main",
                                &entry_args(&wl.args),
                                MachineConfig::one_issue(),
                                exps.first().map_or_else(
                                    || Experiment::fig8().baseline_sim(),
                                    Experiment::baseline_sim,
                                ),
                            ) {
                                Ok(stats) => {
                                    baseline[w].set(stats).expect("baseline cell runs once");
                                }
                                Err(e) => {
                                    errors.record(e.into());
                                    continue;
                                }
                            }
                            cell_stats
                                .lock()
                                .expect("cell stats poisoned")
                                .push(CellStat {
                                    workload: wl.name,
                                    experiment: "baseline",
                                    model: None,
                                    wall: t.elapsed(),
                                });
                        }
                        Cell::Model { e, w, m } => {
                            let wl = &workloads[w];
                            let exp = &exps[e];
                            let model = Model::ALL[m];
                            let key = CompileKey {
                                workload: w,
                                model,
                                issue: exp.issue,
                                branches: exp.branches,
                            };
                            let Some(module) =
                                cache.get_or_compile(key, wl, model, &exp.machine(), pipe, &errors)
                            else {
                                continue;
                            };
                            match simulate(
                                &module,
                                "main",
                                &entry_args(&wl.args),
                                exp.machine(),
                                exp.sim(),
                            ) {
                                Ok(stats) => {
                                    let idx = (e * workloads.len() + w) * 3 + m;
                                    model_stats[idx].set(stats).expect("model cell runs once");
                                }
                                Err(e) => {
                                    errors.record(e.into());
                                    continue;
                                }
                            }
                            cell_stats
                                .lock()
                                .expect("cell stats poisoned")
                                .push(CellStat {
                                    workload: wl.name,
                                    experiment: exp.title,
                                    model: Some(model),
                                    wall: t.elapsed(),
                                });
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = errors.take() {
        return Err(e);
    }

    // Assemble per-figure results; every slot must be filled by now.
    let mut figures = Vec::with_capacity(exps.len());
    for e in 0..exps.len() {
        let mut results = Vec::with_capacity(workloads.len());
        for (w, wl) in workloads.iter().enumerate() {
            let base = baseline[w].get().expect("baseline computed").clone();
            let models: [SimStats; 3] = std::array::from_fn(|m| {
                let idx = (e * workloads.len() + w) * 3 + m;
                let s = model_stats[idx].get().expect("model cell computed").clone();
                assert_eq!(s.ret, base.ret, "{}: {} diverged", wl.name, Model::ALL[m]);
                s
            });
            results.push(BenchResult {
                name: wl.name,
                base,
                models,
            });
        }
        figures.push(results);
    }

    let stats = EngineStats {
        threads,
        wall: started.elapsed(),
        compile_hits: cache.hits.load(Ordering::Relaxed),
        compile_misses: cache.misses.load(Ordering::Relaxed),
        baseline_sims: workloads.len() as u64,
        baseline_reuses: (exps.len().saturating_sub(1) * workloads.len()) as u64,
        model_sims: (exps.len() * workloads.len() * 3) as u64,
        cells: cell_stats.into_inner().expect("cell stats poisoned"),
    };
    Ok(MatrixOutput { figures, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_empty() {
        let out =
            run_matrix_workloads(&[], &[], &Pipeline::default(), 2).expect("empty matrix runs");
        assert!(out.figures.is_empty());
        assert_eq!(out.stats.compile_hits + out.stats.compile_misses, 0);
    }

    #[test]
    fn compile_errors_propagate_not_panic() {
        let bad = Workload {
            name: "bad",
            description: "unparseable",
            source: "int main( {".to_string(),
            args: Vec::new(),
        };
        let err = run_matrix_workloads(&[Experiment::fig8()], &[bad], &Pipeline::default(), 2);
        assert!(err.is_err(), "syntax error must surface as PipelineError");
    }
}
