//! Crash-safe resume suite: a matrix run killed mid-flight and resumed
//! from its journal — at a different thread count — must produce stats
//! bit-identical to an uninterrupted serial run, and a journal written
//! under a different configuration must be ignored, never silently
//! reused.

use hyperpred::{
    run_matrix_configured, run_matrix_workloads_policy, Experiment, FailurePolicy, MatrixConfig,
    MatrixRun, Pipeline, RunJournal,
};
use hyperpred_workloads::Workload;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn workloads() -> Vec<Workload> {
    let loopy = Workload {
        name: "loopy",
        description: "branchy loop",
        source: "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 300; i += 1) {
                if (i % 3 == 0) s += 5; else s -= 1;
            }
            return s;
        }"
        .to_string(),
        args: vec![],
    };
    let calls = Workload {
        name: "calls",
        description: "call-heavy",
        source: "int inc(int v) { if (v > 50) return v - 3; return v + 7; }
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 200; i += 1) { s += inc(i % 90); }
            return s;
        }"
        .to_string(),
        args: vec![],
    };
    vec![loopy, calls]
}

/// Both runs completed every slot with exactly the same numbers.
fn assert_bit_identical(got: &MatrixRun, want: &MatrixRun) {
    assert_eq!(got.outcomes.len(), want.outcomes.len());
    for (grow, wrow) in got.outcomes.iter().zip(&want.outcomes) {
        assert_eq!(grow.len(), wrow.len());
        for (g, w) in grow.iter().zip(wrow) {
            let g = g.ok().expect("every cell completed");
            let w = w.ok().expect("every cell completed");
            assert_eq!(g.name, w.name);
            assert_eq!(g.base, w.base, "{}: baseline stats differ", g.name);
            assert_eq!(g.models, w.models, "{}: model stats differ", g.name);
        }
    }
}

#[test]
fn interrupted_run_resumes_bit_identically_across_thread_counts() {
    let dir = tmpdir("journal-resume");
    let path = dir.join("run.jsonl");
    let exps = [Experiment::fig8(), Experiment::fig10()];
    let wls = workloads();
    let pipe = Pipeline::default();

    // The ground truth: one uninterrupted serial run, no journal at all.
    let reference = run_matrix_workloads_policy(&exps, &wls, &pipe, 1, FailurePolicy::KeepGoing);

    // Phase 1: journal at one thread, killed after 5 claimed cells.
    let first = {
        let journal = RunJournal::open(&path).expect("open journal");
        let run = run_matrix_configured(
            &exps,
            &wls,
            &pipe,
            &MatrixConfig {
                threads: 1,
                policy: FailurePolicy::KeepGoing,
                journal: Some(&journal),
                cell_limit: Some(5),
                ..MatrixConfig::default()
            },
        );
        assert!(run.interrupted, "the cell limit must report interruption");
        assert_eq!(
            journal.len() as u64,
            run.stats.journal_appends,
            "every completed cell (and nothing else) is journaled"
        );
        assert!(!journal.is_empty() && journal.len() <= 5);
        run
    };

    // Phase 2: resume the same journal at 8 threads; journaled cells are
    // copied back, the rest run fresh, and the merged result is
    // bit-identical to the uninterrupted serial reference.
    let journal = RunJournal::open(&path).expect("reopen journal");
    let resumed = run_matrix_configured(
        &exps,
        &wls,
        &pipe,
        &MatrixConfig {
            threads: 8,
            policy: FailurePolicy::KeepGoing,
            journal: Some(&journal),
            ..MatrixConfig::default()
        },
    );
    assert!(!resumed.interrupted);
    assert!(resumed.report.is_empty(), "{}", resumed.report);
    assert_eq!(
        resumed.stats.journal_hits, first.stats.journal_appends,
        "exactly the journaled cells are reused"
    );
    assert_bit_identical(&resumed, &reference);

    // Phase 3: a third run finds every cell journaled and simulates
    // nothing at all.
    let journal = RunJournal::open(&path).expect("reopen journal again");
    let total_cells = wls.len() * (1 + 3 * exps.len());
    assert_eq!(journal.len(), total_cells);
    let replayed = run_matrix_configured(
        &exps,
        &wls,
        &pipe,
        &MatrixConfig {
            threads: 4,
            policy: FailurePolicy::KeepGoing,
            journal: Some(&journal),
            ..MatrixConfig::default()
        },
    );
    assert_eq!(replayed.stats.journal_hits as usize, total_cells);
    assert!(
        replayed.stats.cells.is_empty(),
        "a fully journaled run re-runs nothing"
    );
    assert_eq!(replayed.stats.baseline_sims + replayed.stats.model_sims, 0);
    assert_bit_identical(&replayed, &reference);
}

#[test]
fn changed_workload_invalidates_stale_journal_entries() {
    let dir = tmpdir("journal-stale");
    let path = dir.join("run.jsonl");
    let exps = [Experiment::fig8()];
    let pipe = Pipeline::default();

    // Journal a complete run of the original workloads.
    {
        let journal = RunJournal::open(&path).expect("open journal");
        let run = run_matrix_configured(
            &exps,
            &workloads(),
            &pipe,
            &MatrixConfig {
                threads: 2,
                policy: FailurePolicy::KeepGoing,
                journal: Some(&journal),
                ..MatrixConfig::default()
            },
        );
        assert!(run.report.is_empty(), "{}", run.report);
        assert!(!journal.is_empty());
    }

    // Same workload *names*, different source (a scale change looks
    // exactly like this): every stale entry must be ignored.
    let mut changed = workloads();
    changed[0].source = changed[0].source.replace("i < 300", "i < 301");
    let reference =
        run_matrix_workloads_policy(&exps, &changed, &pipe, 1, FailurePolicy::KeepGoing);

    let journal = RunJournal::open(&path).expect("reopen journal");
    let run = run_matrix_configured(
        &exps,
        &changed,
        &pipe,
        &MatrixConfig {
            threads: 2,
            policy: FailurePolicy::KeepGoing,
            journal: Some(&journal),
            ..MatrixConfig::default()
        },
    );
    assert_eq!(
        run.stats.journal_hits,
        (1 + 3) as u64,
        "only the unchanged workload's cells may be reused"
    );
    assert!(run.report.is_empty(), "{}", run.report);
    assert_bit_identical(&run, &reference);
}
