//! Failure-triage suite: a permanently failing cell must leave behind a
//! self-contained repro bundle, the bundle must replay to the same
//! failure signature (including through the `hyperpredc repro` CLI), and
//! the delta-debugging minimizer must produce a strictly smaller program
//! that still fails the same way.

use hyperpred::faults::{panic_fixture, sim_panic_fixture};
use hyperpred::triage;
use hyperpred::FailureStage;
use hyperpred::{
    compile_model, load_bundle, minimize_module, run_matrix_configured, Experiment, FailurePolicy,
    MatrixConfig, Model, Pipeline, TriageConfig,
};
use hyperpred_sim::MemoryModel;
use std::path::PathBuf;

const TEST_MAX_CYCLES: u64 = 50_000;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn experiment() -> Experiment {
    let mut exp = Experiment::fig8();
    exp.max_cycles = TEST_MAX_CYCLES;
    exp
}

fn injected_run(dir: &PathBuf) {
    let pipe = Pipeline {
        fault_injection: true,
        ..Pipeline::default()
    };
    let tcfg = TriageConfig::new(dir);
    let run = run_matrix_configured(
        &[experiment()],
        &[panic_fixture(), sim_panic_fixture()],
        &pipe,
        &MatrixConfig {
            threads: 2,
            policy: FailurePolicy::KeepGoing,
            triage: Some(&tcfg),
            ..MatrixConfig::default()
        },
    );
    assert!(!run.report.is_empty(), "injected faults must be reported");
}

#[test]
fn permanent_failures_emit_replayable_bundles() {
    let dir = tmpdir("triage-bundles");
    injected_run(&dir);

    let bundles: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("triage dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert!(
        bundles.iter().any(|b| b
            .file_name()
            .is_some_and(|n| n.to_string_lossy().starts_with("inject-panic"))),
        "compile-stage panic must leave a bundle: {bundles:?}"
    );
    assert!(
        bundles.iter().any(|b| b
            .file_name()
            .is_some_and(|n| n.to_string_lossy().starts_with("inject-simpanic"))),
        "simulate-stage panic must leave a bundle: {bundles:?}"
    );

    for b in &bundles {
        let bundle = load_bundle(b).expect("every bundle loads");
        assert!(!bundle.source.is_empty());
        assert!(!bundle.cell.signature.is_empty());
        assert!(bundle.cell.fault_injection);
        // The bundle is self-contained: replaying it from nothing but the
        // stored source reproduces the recorded signature exactly.
        let replayed = triage::replay(&bundle.cell, &bundle.source);
        assert_eq!(
            replayed.as_deref(),
            Some(bundle.cell.signature.as_str()),
            "{}: replay must reproduce the recorded failure",
            b.display()
        );
    }

    // The compile-stage panic has no module, so the minimizer ran on
    // source lines: strictly smaller, same signature.
    let panic_bundle = bundles
        .iter()
        .find(|b| {
            b.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("inject-panic"))
        })
        .expect("panic bundle");
    assert!(
        !panic_bundle.join("ir.txt").exists(),
        "a compile-stage failure has no lowered module to dump"
    );
    let original = std::fs::read_to_string(panic_bundle.join("workload.c")).expect("workload.c");
    let minimized = std::fs::read_to_string(panic_bundle.join("minimized.c"))
        .expect("compile-stage bundles carry a source-level minimization");
    assert!(
        minimized.lines().count() < original.lines().count(),
        "minimized source must be strictly smaller"
    );
    let bundle = load_bundle(panic_bundle).expect("loads");
    assert_eq!(
        triage::replay(&bundle.cell, &minimized).as_deref(),
        Some(bundle.cell.signature.as_str()),
        "minimized source must still fail with the same signature"
    );

    // The simulate-stage panic happened after lowering, so the bundle
    // carries the IR dump and a module-level minimization.
    let sim_bundle = bundles
        .iter()
        .find(|b| {
            b.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("inject-simpanic"))
        })
        .expect("simpanic bundle");
    assert!(
        sim_bundle.join("ir.txt").exists(),
        "a simulate-stage failure dumps the lowered module"
    );
    assert!(
        sim_bundle.join("minimized.txt").exists() && sim_bundle.join("minimize.json").exists(),
        "a simulate-stage failure gets a module-level minimization"
    );
}

#[test]
fn minimize_module_shrinks_while_preserving_the_signature() {
    let fixture = sim_panic_fixture();
    let machine = hyperpred_sched::MachineConfig::new(8, 1);
    let module = compile_model(&fixture.source, &fixture.args, Model::FullPred, &machine)
        .expect("the fixture compiles; the injection trips at simulate time");

    let cell = triage::ReproCell {
        workload: fixture.name.to_string(),
        args: fixture.args.clone(),
        experiment: experiment().title.to_string(),
        model: Some(Model::FullPred),
        issue: 8,
        branches: 1,
        memory: MemoryModel::Perfect,
        max_cycles: TEST_MAX_CYCLES,
        fault_injection: true,
        sabotage: None,
        stage: FailureStage::Simulate,
        signature: String::new(), // established by the minimizer itself
        fingerprint: String::new(),
        attempts: 1,
    };
    let min = minimize_module(&cell, &module).expect("the module fails, so minimization applies");
    assert!(
        min.minimized_insts < min.original_insts,
        "minimizer must strictly shrink ({} -> {})",
        min.original_insts,
        min.minimized_insts
    );
    assert!(
        min.signature.contains("injected simulate-stage panic"),
        "unexpected signature {}",
        min.signature
    );
    // The shrunken module itself still fails identically.
    assert_eq!(
        triage::minimize_module(&cell, &min.module)
            .expect("still fails")
            .signature,
        min.signature
    );
}

#[test]
fn hyperpredc_repro_reproduces_the_recorded_failure() {
    let dir = tmpdir("triage-cli");
    injected_run(&dir);

    let bundle = std::fs::read_dir(&dir)
        .expect("triage dir exists")
        .map(|e| e.expect("dir entry").path())
        .find(|b| {
            b.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("inject-panic"))
        })
        .expect("panic bundle exists");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hyperpredc"))
        .arg("repro")
        .arg(&bundle)
        .output()
        .expect("spawn hyperpredc repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "repro of a real failure exits 1\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("reproduced"),
        "repro must confirm the signature matched\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("recorded signature"),
        "repro prints the recorded signature\nstdout:\n{stdout}"
    );
}
