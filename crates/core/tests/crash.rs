//! Crash-point torture sweep for the store's durability contract.
//!
//! For *every* injected crash index across the append and compaction
//! paths, recovery (`fsck --repair` + reopen) must yield a store where
//! every record acked after fsync is present bit-identically and no
//! torn or corrupt line is ever served. The sweep learns the total I/O
//! op count from an uninterrupted calibration run, then replays the
//! same workload once per op index with a hard crash (torn write +
//! every later op failing) injected at that index — in single-thread,
//! 8-thread, compaction, and two-real-process variants, mirroring
//! `tests/store.rs`.

use hyperpred::{fsck, FaultPlan, FsckOptions, JournalEntry, Store, StoreConfig, SyncPolicy, Vfs};
use hyperpred_sim::SimStats;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn stats_for(i: u64) -> SimStats {
    SimStats {
        cycles: 10_000 + i * 13,
        insts: 20_000 + i * 5,
        nullified: i % 7,
        branches: 300 + i,
        mispredicts: i % 3,
        loads: 80 + i * 2,
        stores: 40 + i,
        icache_misses: 0,
        dcache_misses: 0,
        ret: i as i64,
    }
}

fn fp_for(i: u64) -> String {
    format!("v1|crash{:016x}|wl-{}|crashtest", i * 0x2545f491, i)
}

fn put_cell(store: &Store, i: u64) -> std::io::Result<()> {
    let fp = fp_for(i);
    store
        .put(&JournalEntry {
            fingerprint: &fp,
            workload: "wl",
            experiment: "crash-test",
            model: None,
            stats: &stats_for(i),
        })
        .map(|_| ())
}

fn always_sync(vfs: Vfs) -> StoreConfig {
    StoreConfig {
        vfs,
        sync: SyncPolicy::Always,
        ..StoreConfig::default()
    }
}

/// Repairs and reopens a crashed store with a clean I/O world. The
/// zero staleness threshold lets fsck reclaim a `compact.lock` left by
/// *this* (still-alive) process's simulated crash.
fn recover(dir: &Path, ctx: &str) -> Store {
    let report = fsck(
        dir,
        &FsckOptions {
            repair: true,
            lock_stale_after: Duration::ZERO,
            ..FsckOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{ctx}: fsck failed: {e}"));
    let store = Store::open(dir).unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    assert_eq!(
        store.corrupt(),
        0,
        "{ctx}: repaired store must serve zero corrupt lines\n{report}"
    );
    store
}

/// The full logical content, for bit-identical comparison.
fn snapshot(store: &Store) -> BTreeMap<String, SimStats> {
    let mut map = BTreeMap::new();
    for i in 0..1_000u64 {
        let fp = fp_for(i);
        if let Some(s) = store.get(&fp) {
            map.insert(fp, s);
        }
    }
    map
}

/// Appends `cells` records through one handle; returns the acked ids.
/// Keeps going after the crash point (every later put just fails), so
/// one run exercises the whole schedule.
fn run_serial_appends(vfs: Vfs, dir: &Path, cells: u64) -> Vec<u64> {
    let mut acked = Vec::new();
    let Ok(store) = Store::open_with(dir, always_sync(vfs)) else {
        return acked;
    };
    for i in 0..cells {
        if put_cell(&store, i).is_ok() {
            acked.push(i);
        }
    }
    acked
}

#[test]
fn crash_sweep_single_writer_append_path() {
    const CELLS: u64 = 12;
    let calib = Vfs::real();
    let acked = run_serial_appends(calib.clone(), &tmpdir("crash-1t-calib"), CELLS);
    assert_eq!(acked.len() as u64, CELLS, "calibration run must be clean");
    let total = calib.ops();
    assert!(total > CELLS, "appends must consume ops ({total})");

    for k in 0..total {
        let ctx = format!("1-thread crash at op {k}/{total}");
        let dir = tmpdir("crash-1t-sweep");
        let keep = (k as usize * 7) % 23;
        let vfs = Vfs::faulted(FaultPlan::crash_at(k, keep));
        let acked = run_serial_appends(vfs.clone(), &dir, CELLS);
        assert!(vfs.crashed(), "{ctx}: crash point must fire");
        if !dir.exists() {
            // The crash landed on mkdir: nothing was acked, nothing to
            // recover.
            assert!(acked.is_empty(), "{ctx}");
            continue;
        }
        let store = recover(&dir, &ctx);
        assert_eq!(store.conflicts(), 0, "{ctx}");
        assert!(store.len() as u64 <= CELLS, "{ctx}");
        for &i in &acked {
            assert_eq!(
                store.get(&fp_for(i)),
                Some(stats_for(i)),
                "{ctx}: acked cell {i} must survive bit-identically"
            );
        }
    }
}

/// Eight threads share one handle (striped cells, no overlap so every
/// ack is unambiguous); the crash lands on whichever thread draws the
/// fatal op index.
fn run_threaded_appends(vfs: Vfs, dir: &Path, cells: u64, threads: u64) -> Vec<u64> {
    let Ok(store) = Store::open_with(dir, always_sync(vfs)) else {
        return Vec::new();
    };
    let store = Arc::new(store);
    let acked = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                for i in (0..cells).filter(|i| i % threads == t) {
                    if put_cell(&store, i).is_ok() {
                        acked.lock().unwrap().push(i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let mut acked = acked.lock().unwrap().clone();
    acked.sort_unstable();
    acked
}

#[test]
fn crash_sweep_eight_threads_shared_handle() {
    const CELLS: u64 = 16;
    const THREADS: u64 = 8;
    let calib = Vfs::real();
    let acked = run_threaded_appends(calib.clone(), &tmpdir("crash-8t-calib"), CELLS, THREADS);
    assert_eq!(acked.len() as u64, CELLS, "calibration run must be clean");
    let total = calib.ops();

    for k in 0..total {
        let ctx = format!("8-thread crash at op {k}/{total}");
        let dir = tmpdir("crash-8t-sweep");
        let vfs = Vfs::faulted(FaultPlan::crash_at(k, (k as usize * 7) % 23));
        let acked = run_threaded_appends(vfs.clone(), &dir, CELLS, THREADS);
        assert!(vfs.crashed(), "{ctx}: crash point must fire");
        if !dir.exists() {
            assert!(acked.is_empty(), "{ctx}");
            continue;
        }
        let store = recover(&dir, &ctx);
        assert_eq!(store.conflicts(), 0, "{ctx}");
        for &i in &acked {
            assert_eq!(
                store.get(&fp_for(i)),
                Some(stats_for(i)),
                "{ctx}: acked cell {i} must survive bit-identically"
            );
        }
    }
}

/// Copies every regular file of `src` into a recreated `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read master dir") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().expect("file name")))
                .expect("copy segment");
        }
    }
}

#[test]
fn crash_sweep_compaction_path() {
    const CELLS: u64 = 16;
    // A pristine multi-segment store with duplicates (cell 3 written by
    // both handles) and one genuine conflict that must survive every
    // crashed-and-recovered compaction.
    let master = tmpdir("crash-compact-master");
    {
        let a = Store::open(&master).expect("open a");
        let b = Store::open(&master).expect("open b");
        for i in 0..CELLS / 2 {
            put_cell(&a, i).expect("put a");
        }
        for i in CELLS / 2..CELLS {
            put_cell(&b, i).expect("put b");
        }
        put_cell(&b, 3).expect("duplicate line via b");
        let conflict_entry = |stats: &SimStats| {
            b.put(&JournalEntry {
                fingerprint: "v1|crash-conflict|key",
                workload: "wl",
                experiment: "crash-test",
                model: None,
                stats,
            })
            .expect("conflict line")
        };
        a.put(&JournalEntry {
            fingerprint: "v1|crash-conflict|key",
            workload: "wl",
            experiment: "crash-test",
            model: None,
            stats: &stats_for(700),
        })
        .expect("conflict line via a");
        conflict_entry(&stats_for(900));
        a.sync().expect("sync a");
        b.sync().expect("sync b");
    }
    let reference = {
        let s = Store::open(&master).expect("open reference");
        assert_eq!(s.conflicts(), 1, "master must hold one conflict");
        assert_eq!(s.len() as u64, CELLS);
        snapshot(&s)
    };

    // Calibration: ops of an uninterrupted open + compact.
    let calib = Vfs::real();
    {
        let dir = tmpdir("crash-compact-calib");
        copy_dir(&master, &dir);
        let s = Store::open_with(&dir, always_sync(calib.clone())).expect("open calib");
        s.compact().expect("calibration compact");
    }
    let total = calib.ops();

    for k in 0..total {
        let ctx = format!("compaction crash at op {k}/{total}");
        let dir = tmpdir("crash-compact-sweep");
        copy_dir(&master, &dir);
        let vfs = Vfs::faulted(FaultPlan::crash_at(k, (k as usize * 11) % 37));
        if let Ok(store) = Store::open_with(&dir, always_sync(vfs.clone())) {
            // The compaction may fail at any point — that is the test.
            let _ = store.compact();
        }
        assert!(vfs.crashed(), "{ctx}: crash point must fire");
        let store = recover(&dir, &ctx);
        assert_eq!(
            store.conflicts(),
            1,
            "{ctx}: the conflict must survive a crashed compaction"
        );
        assert_eq!(snapshot(&store), reference, "{ctx}");
        // The recovered store must be fully operational: a fresh
        // compaction completes and changes nothing logically.
        store
            .compact()
            .unwrap_or_else(|e| panic!("{ctx}: post-recovery compaction: {e}"));
        assert_eq!(snapshot(&store), reference, "{ctx}: after re-compaction");
    }
}

/// Env-gated helper: appends a stripe of cells through a store whose
/// I/O crashes at `HYPERPRED_CRASH_AT`, then reports the acked ids (and
/// total op count) to side files written with *plain* std::fs — outside
/// the faulted world. Inert in a normal run.
#[test]
fn crash_writer_helper() {
    let Ok(dir) = std::env::var("HYPERPRED_CRASH_DIR") else {
        return;
    };
    let stripe: u64 = std::env::var("HYPERPRED_CRASH_STRIPE")
        .expect("stripe")
        .parse()
        .expect("stripe number");
    let cells: u64 = std::env::var("HYPERPRED_CRASH_CELLS")
        .expect("cells")
        .parse()
        .expect("cell count");
    let vfs = match std::env::var("HYPERPRED_CRASH_AT") {
        Ok(at) => {
            let at: u64 = at.parse().expect("crash op index");
            let keep: usize = std::env::var("HYPERPRED_CRASH_KEEP")
                .expect("keep")
                .parse()
                .expect("keep bytes");
            Vfs::faulted(FaultPlan::crash_at(at, keep))
        }
        Err(_) => Vfs::real(),
    };
    let mut acked = Vec::new();
    if let Ok(store) = Store::open_with(&dir, always_sync(vfs.clone())) {
        for i in (0..cells).filter(|i| i % 2 == stripe) {
            if put_cell(&store, i).is_ok() {
                acked.push(i.to_string());
            }
        }
    }
    if let Ok(path) = std::env::var("HYPERPRED_ACKED_FILE") {
        std::fs::write(path, acked.join("\n")).expect("write acked file");
    }
    if let Ok(path) = std::env::var("HYPERPRED_OPS_FILE") {
        std::fs::write(path, vfs.ops().to_string()).expect("write ops file");
    }
}

struct ChildRun {
    acked_file: PathBuf,
    child: std::process::Child,
}

fn spawn_crash_writer(
    dir: &Path,
    scratch: &Path,
    stripe: u64,
    cells: u64,
    crash_at: Option<(u64, usize)>,
) -> ChildRun {
    let acked_file = scratch.join(format!("acked-{stripe}"));
    let mut cmd = Command::new(std::env::current_exe().expect("test binary path"));
    cmd.args(["--exact", "crash_writer_helper", "--nocapture"])
        .env("HYPERPRED_CRASH_DIR", dir)
        .env("HYPERPRED_CRASH_STRIPE", stripe.to_string())
        .env("HYPERPRED_CRASH_CELLS", cells.to_string())
        .env("HYPERPRED_ACKED_FILE", &acked_file)
        .env_remove("HYPERPRED_CRASH_AT")
        .env_remove("HYPERPRED_OPS_FILE");
    if let Some((at, keep)) = crash_at {
        cmd.env("HYPERPRED_CRASH_AT", at.to_string())
            .env("HYPERPRED_CRASH_KEEP", keep.to_string());
    }
    let child = cmd.spawn().expect("spawn crash writer");
    ChildRun { acked_file, child }
}

fn join_acked(mut run: ChildRun) -> Vec<u64> {
    let status = run.child.wait().expect("wait for writer");
    assert!(status.success(), "crash writer helper must exit cleanly");
    std::fs::read_to_string(&run.acked_file)
        .expect("read acked file")
        .lines()
        .map(|l| l.parse().expect("acked id"))
        .collect()
}

#[test]
fn crash_sweep_two_real_processes() {
    const CELLS: u64 = 12;
    let scratch = tmpdir("crash-2p-scratch");

    // Calibration child reports how many ops a clean stripe-0 run costs.
    let ops_file = scratch.join("ops");
    let calib = {
        let calib_dir = tmpdir("crash-2p-calib");
        let status = Command::new(std::env::current_exe().expect("test binary path"))
            .args(["--exact", "crash_writer_helper", "--nocapture"])
            .env("HYPERPRED_CRASH_DIR", &calib_dir)
            .env("HYPERPRED_CRASH_STRIPE", "0")
            .env("HYPERPRED_CRASH_CELLS", CELLS.to_string())
            .env("HYPERPRED_ACKED_FILE", scratch.join("acked-calib"))
            .env("HYPERPRED_OPS_FILE", &ops_file)
            .env_remove("HYPERPRED_CRASH_AT")
            .status()
            .expect("run calibration writer");
        assert!(status.success());
        std::fs::read_to_string(&ops_file)
            .expect("read ops file")
            .trim()
            .parse::<u64>()
            .expect("op count")
    };
    assert!(calib > 0, "calibration must observe I/O ops");

    for k in 0..calib {
        let ctx = format!("2-process crash at op {k}/{calib}");
        let dir = tmpdir("crash-2p-sweep");
        // One process crashes at op k of its own I/O schedule; a clean
        // sibling writes the other stripe concurrently.
        let faulted =
            spawn_crash_writer(&dir, &scratch, 0, CELLS, Some((k, (k as usize * 7) % 23)));
        let clean = spawn_crash_writer(&dir, &scratch, 1, CELLS, None);
        let acked_faulted = join_acked(faulted);
        let acked_clean = join_acked(clean);
        assert_eq!(
            acked_clean.len() as u64,
            CELLS / 2,
            "{ctx}: the clean sibling must ack its whole stripe"
        );

        let store = recover(&dir, &ctx);
        assert_eq!(store.conflicts(), 0, "{ctx}");
        for &i in acked_faulted.iter().chain(&acked_clean) {
            assert_eq!(
                store.get(&fp_for(i)),
                Some(stats_for(i)),
                "{ctx}: acked cell {i} must survive bit-identically"
            );
        }
    }
}
