//! Concurrent-writer safety suite for the content-addressed result
//! store: N threads sharing one handle, two independent handles in the
//! same process, two real OS processes, and a writer killed mid-batch
//! and resumed — every merged store must read back bit-identical to an
//! uninterrupted serial run.
//!
//! The cross-process tests re-invoke this test binary (libtest filters
//! select the helper, an env var arms it) so the writers genuinely run
//! in separate address spaces with separate file descriptors.

use hyperpred::{JournalEntry, RecordOutcome, Store};
use hyperpred_sim::SimStats;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Deterministic, distinct stats for cell `i` — every writer derives
/// the same payload for the same key, as real pipeline runs do.
fn stats_for(i: u64) -> SimStats {
    SimStats {
        cycles: 1_000 + i * 7,
        insts: 2_000 + i * 3,
        nullified: i % 5,
        branches: 100 + i,
        mispredicts: i % 11,
        loads: 50 + i * 2,
        stores: 25 + i,
        icache_misses: 0,
        dcache_misses: 0,
        ret: i as i64 - 3,
    }
}

fn fp_for(i: u64) -> String {
    format!("v1|pipe{:016x}|wl-{}|storetest", i * 0x9e37, i)
}

fn put_cell(store: &Store, i: u64) -> RecordOutcome {
    let fp = fp_for(i);
    let stats = stats_for(i);
    store
        .put(&JournalEntry {
            fingerprint: &fp,
            workload: "wl",
            experiment: "store-test",
            model: None,
            stats: &stats,
        })
        .expect("put")
}

/// The full logical content of a store, keyed for ordered comparison.
fn snapshot(store: &Store) -> BTreeMap<String, SimStats> {
    let mut map = BTreeMap::new();
    for i in 0..1_000u64 {
        let fp = fp_for(i);
        if let Some(s) = store.get(&fp) {
            map.insert(fp, s);
        }
    }
    map
}

fn serial_reference(dir: &Path, n: u64) -> BTreeMap<String, SimStats> {
    let store = Store::open(dir).expect("open serial store");
    for i in 0..n {
        put_cell(&store, i);
    }
    snapshot(&store)
}

#[test]
fn n_threads_one_handle_merge_bit_identical_to_serial() {
    const CELLS: u64 = 120;
    const THREADS: u64 = 8;

    let serial = serial_reference(&tmpdir("store-serial-a"), CELLS);

    let dir = tmpdir("store-threads");
    let store = Arc::new(Store::open(&dir).expect("open store"));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                // Striped ownership plus deliberate overlap: every
                // thread also re-puts its neighbour's stripe, so the
                // duplicate path runs concurrently with appends.
                for i in (0..CELLS).filter(|i| i % THREADS == t || i % THREADS == (t + 1) % THREADS)
                {
                    put_cell(&store, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    assert_eq!(store.len() as u64, CELLS);
    assert_eq!(store.conflicts(), 0);
    assert_eq!(snapshot(&store), serial);

    // Compaction must not change a single answer. (One shared handle
    // dedups before the disk, so there are no duplicate lines to drop.)
    let stats = store.compact().expect("compact");
    assert_eq!(stats.lines_out as u64, CELLS, "{stats:?}");
    assert_eq!(snapshot(&store), serial);

    // A cold reopen sees the same content.
    let reopened = Store::open(&dir).expect("reopen");
    assert_eq!(reopened.len() as u64, CELLS);
    assert_eq!(snapshot(&reopened), serial);
}

#[test]
fn two_in_process_handles_merge_bit_identical_to_serial() {
    const CELLS: u64 = 80;
    let serial = serial_reference(&tmpdir("store-serial-b"), CELLS);

    let dir = tmpdir("store-two-handles");
    let a = Store::open(&dir).expect("open a");
    let b = Store::open(&dir).expect("open b");
    // Each handle owns its own segment file; interleave writers with an
    // overlapping middle band.
    for i in 0..CELLS {
        if i % 2 == 0 || (30..50).contains(&i) {
            put_cell(&a, i);
        }
        if i % 2 == 1 || (30..50).contains(&i) {
            put_cell(&b, i);
        }
    }
    // Neither handle saw the other's appends; a refresh merges them.
    a.refresh().expect("refresh a");
    assert_eq!(a.len() as u64, CELLS);
    assert_eq!(a.conflicts(), 0);
    assert_eq!(snapshot(&a), serial);
}

/// Helper the cross-process tests execute: writes a stripe of cells to
/// the store named by `HYPERPRED_STORE_DIR`. Inert (instant pass) in a
/// normal test run.
#[test]
fn store_writer_helper() {
    let Ok(dir) = std::env::var("HYPERPRED_STORE_DIR") else {
        return;
    };
    let stripe: u64 = std::env::var("HYPERPRED_STORE_STRIPE")
        .expect("stripe")
        .parse()
        .expect("stripe number");
    let cells: u64 = std::env::var("HYPERPRED_STORE_CELLS")
        .expect("cells")
        .parse()
        .expect("cell count");
    let pace_ms: u64 = std::env::var("HYPERPRED_STORE_PACE_MS")
        .map(|v| v.parse().expect("pace"))
        .unwrap_or(0);
    let store = Store::open(&dir).expect("open store in child");
    for i in (0..cells).filter(|i| i % 2 == stripe || (cells / 3..cells / 2).contains(i)) {
        put_cell(&store, i);
        if pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(pace_ms));
        }
    }
}

/// Helper for the stale-lock test: plants a `compact.lock` naming its
/// own (live) pid, then sleeps until killed. Inert in a normal run.
#[test]
fn lock_holder_helper() {
    let Ok(dir) = std::env::var("HYPERPRED_LOCK_DIR") else {
        return;
    };
    let path = Path::new(&dir).join("compact.lock");
    std::fs::write(&path, format!("{}\n", std::process::id())).expect("write lock");
    std::thread::sleep(std::time::Duration::from_secs(60));
}

#[test]
fn stale_lock_from_killed_process_is_stolen() {
    const CELLS: u64 = 12;
    let dir = tmpdir("store-lock-kill");
    let store = Store::open(&dir).expect("open store");
    for i in 0..CELLS {
        put_cell(&store, i);
    }

    let mut holder = Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "lock_holder_helper", "--nocapture"])
        .env("HYPERPRED_LOCK_DIR", &dir)
        .spawn()
        .expect("spawn lock holder");
    let lock = dir.join("compact.lock");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !lock.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "lock holder never planted its lock"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // While the owning process lives, compaction must refuse with the
    // typed already-held error — no stealing from a live owner.
    let err = store.compact().expect_err("live lock must block");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");

    // Kill the owner without any cleanup: exactly the crash that used
    // to wedge the store forever.
    holder.kill().expect("kill lock holder");
    let _ = holder.wait();

    // The dead pid makes the lock stale; compaction steals it and runs.
    let stats = store.compact().expect("compaction steals a dead lock");
    assert_eq!(stats.lines_out as u64, CELLS, "{stats:?}");
    assert!(!lock.exists(), "stolen lock must be released after use");
    let reopened = Store::open(&dir).expect("reopen");
    assert_eq!(reopened.len() as u64, CELLS);
    assert_eq!(reopened.corrupt(), 0);
}

fn spawn_writer(dir: &Path, stripe: u64, cells: u64, pace_ms: u64) -> std::process::Child {
    Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "store_writer_helper", "--nocapture"])
        .env("HYPERPRED_STORE_DIR", dir)
        .env("HYPERPRED_STORE_STRIPE", stripe.to_string())
        .env("HYPERPRED_STORE_CELLS", cells.to_string())
        .env("HYPERPRED_STORE_PACE_MS", pace_ms.to_string())
        .spawn()
        .expect("spawn writer process")
}

#[test]
fn two_processes_merge_bit_identical_to_serial() {
    const CELLS: u64 = 60;
    let serial = serial_reference(&tmpdir("store-serial-c"), CELLS);

    let dir = tmpdir("store-two-procs");
    let mut a = spawn_writer(&dir, 0, CELLS, 0);
    let mut b = spawn_writer(&dir, 1, CELLS, 0);
    assert!(a.wait().expect("wait a").success(), "writer a failed");
    assert!(b.wait().expect("wait b").success(), "writer b failed");

    let store = Store::open(&dir).expect("open merged store");
    assert_eq!(store.len() as u64, CELLS, "every stripe landed");
    assert_eq!(store.conflicts(), 0, "{:?}", store.conflict_report());
    assert_eq!(store.corrupt(), 0);
    assert_eq!(snapshot(&store), serial);

    let stats = store.compact().expect("compact merged store");
    assert!(stats.segments_merged >= 2, "{stats:?}");
    assert_eq!(snapshot(&store), serial);
    let reopened = Store::open(&dir).expect("reopen after compaction");
    assert_eq!(snapshot(&reopened), serial);
}

#[test]
fn killed_writer_resumes_bit_identically() {
    const CELLS: u64 = 60;
    let serial = serial_reference(&tmpdir("store-serial-d"), CELLS);

    let dir = tmpdir("store-kill-resume");
    // A paced writer so the kill lands mid-batch, not after the fact.
    let mut child = spawn_writer(&dir, 0, CELLS, 5);
    // Wait until at least one record hit the disk, then kill without
    // warning — whatever tail it tore must be tolerated, not fatal.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let written = Store::open(&dir).map(|s| s.len()).unwrap_or(0);
        if written >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "writer produced no records to kill over"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill().expect("kill writer");
    let _ = child.wait();

    // Resume: a fresh writer re-puts the *entire* batch. Everything the
    // dead writer landed is deduplicated; the rest appends.
    let store = Store::open(&dir).expect("open store after kill");
    let survivors = store.len() as u64;
    assert!(survivors >= 3, "kill landed before any writes");
    let mut duplicates = 0;
    for i in 0..CELLS {
        if put_cell(&store, i) == RecordOutcome::Duplicate {
            duplicates += 1;
        }
    }
    assert_eq!(duplicates, survivors, "dead writer's records all reused");
    assert_eq!(store.len() as u64, CELLS);
    assert_eq!(store.conflicts(), 0, "{:?}", store.conflict_report());
    assert_eq!(snapshot(&store), serial);

    // Compact and reopen: still bit-identical to the serial reference.
    store.compact().expect("compact after resume");
    let reopened = Store::open(&dir).expect("reopen");
    assert_eq!(snapshot(&reopened), serial);
}
