//! End-to-end coverage for the per-pass semantic checkpoints: every
//! workload/model combination must lint clean at every checkpoint, and a
//! deliberately injected miscompile must be caught with the offending
//! pass named.

use hyperpred::ir::analysis::CheckKind;
use hyperpred::sched::MachineConfig;
use hyperpred::workloads::{all, by_name, Scale};
use hyperpred::{Model, Pipeline, PipelineError, Stage};

fn checked_pipeline() -> Pipeline {
    Pipeline {
        checks: true,
        ..Pipeline::default()
    }
}

/// The acceptance sweep: all 15 workloads × 3 models compile with the
/// checkpoint runner active at every stage.
#[test]
fn all_workloads_lint_clean_under_every_model() {
    let pipe = checked_pipeline();
    let machine = MachineConfig::new(8, 1);
    for w in all(Scale::Test) {
        for model in Model::ALL {
            if let Err(e) = pipe.compile(&w.source, &w.args, model, &machine) {
                panic!("{} under {model} failed checkpoints: {e}", w.name);
            }
        }
    }
}

/// A corruption injected right after if-conversion is blamed on
/// if-conversion, not on whatever pass the pipeline ends with.
#[test]
fn sabotaged_ifconvert_is_blamed_by_name() {
    let pipe = Pipeline {
        sabotage: Some(Stage::IfConvert),
        ..checked_pipeline()
    };
    let machine = MachineConfig::new(8, 1);
    let w = &all(Scale::Test)[0];
    let err = pipe
        .compile(&w.source, &w.args, Model::FullPred, &machine)
        .expect_err("sabotaged compile must fail");
    let PipelineError::Lint(ref lint) = err else {
        panic!("expected a lint error, got {err}");
    };
    assert_eq!(lint.pass, Stage::IfConvert);
    assert!(
        lint.violations
            .iter()
            .any(|v| v.kind == CheckKind::UseBeforeDef),
        "never-defined guard should read as use-before-def: {:?}",
        lint.violations
    );
    let msg = err.to_string();
    assert!(msg.contains("after pass `ifconvert`"), "{msg}");
}

/// The same corruption after the frontend violates model conformance in
/// the superblock model (no predicates may exist at all).
#[test]
fn sabotaged_frontend_breaks_superblock_conformance() {
    let pipe = Pipeline {
        sabotage: Some(Stage::Frontend),
        ..checked_pipeline()
    };
    let machine = MachineConfig::new(8, 1);
    let w = &all(Scale::Test)[0];
    let err = pipe
        .compile(&w.source, &w.args, Model::Superblock, &machine)
        .expect_err("sabotaged compile must fail");
    let PipelineError::Lint(lint) = err else {
        panic!("expected a lint error, got {err}");
    };
    assert_eq!(lint.pass, Stage::Frontend);
    assert!(lint
        .violations
        .iter()
        .any(|v| v.kind == CheckKind::ModelConformance));
}

/// A corruption after partial conversion leaves a guard the cmov model
/// may not carry.
#[test]
fn sabotaged_partial_convert_is_blamed_by_name() {
    let pipe = Pipeline {
        sabotage: Some(Stage::PartialConvert),
        ..checked_pipeline()
    };
    let machine = MachineConfig::new(8, 1);
    let w = &all(Scale::Test)[0];
    let err = pipe
        .compile(&w.source, &w.args, Model::CondMove, &machine)
        .expect_err("sabotaged compile must fail");
    let PipelineError::Lint(lint) = err else {
        panic!("expected a lint error, got {err}");
    };
    assert_eq!(lint.pass, Stage::PartialConvert);
    assert!(lint
        .violations
        .iter()
        .any(|v| v.kind == CheckKind::ModelConformance));
}

/// The `relations` stage sabotage corrupts the *held partition graph*
/// (an asymmetric disjointness bit), not the IR — the module itself
/// still verifies, so only the relation-soundness checker family can
/// catch it, and it must blame the relations stage by name.
#[test]
fn sabotaged_relations_graph_is_caught_and_blamed() {
    let pipe = Pipeline {
        sabotage: Some(Stage::Relations),
        ..checked_pipeline()
    };
    let machine = MachineConfig::new(8, 1);
    // `wc` reliably if-converts into a multi-predicate hyperblock at
    // test scale (the corruption needs at least two predicate regs).
    let w = by_name("wc", Scale::Test).unwrap();
    let err = pipe
        .compile(&w.source, &w.args, Model::FullPred, &machine)
        .expect_err("corrupted relation graph must fail the compile");
    let PipelineError::Lint(ref lint) = err else {
        panic!("expected a lint error, got {err}");
    };
    assert_eq!(lint.pass, Stage::Relations);
    assert!(
        lint.violations
            .iter()
            .all(|v| v.kind == CheckKind::Relations),
        "only the relation-soundness family can see a corrupted graph: {:?}",
        lint.violations
    );
    let msg = err.to_string();
    assert!(msg.contains("after pass `relations`"), "{msg}");
}

/// With checks off, sabotage corrupts silently — proving the checkpoints
/// (not some other mechanism) are what catches it. The guard is read in
/// the emulator as predicate 0 of an all-false file, which nullifies the
/// instruction; compilation itself must succeed.
#[test]
fn checks_flag_gates_the_checkpoints() {
    let pipe = Pipeline {
        checks: false,
        sabotage: Some(Stage::Schedule),
        ..Pipeline::default()
    };
    let machine = MachineConfig::new(8, 1);
    let w = &all(Scale::Test)[0];
    // Sabotage after the last stage with checks disabled: nothing trips.
    // (Debug builds still run the structural backstop, which a stray
    // guard passes.)
    pipe.compile(&w.source, &w.args, Model::FullPred, &machine)
        .expect("checks disabled: sabotage goes unnoticed");
}

#[test]
fn stage_names_round_trip() {
    for s in Stage::ALL {
        assert_eq!(s.name().parse::<Stage>().unwrap(), s);
    }
    assert!("nonsense".parse::<Stage>().is_err());
}
