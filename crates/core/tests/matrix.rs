//! Engine correctness: the parallel matrix must be a pure reordering of
//! the serial path — identical `SimStats` per cell at any thread count —
//! and its caches must actually deduplicate work.
//!
//! Workloads here are small MiniC programs (plus the `wc` mini) so the
//! debug-build suite stays fast; the full suite runs through the engine in
//! the CI figures smoke job and the `figures`/`hyperpredc report`
//! binaries.

use hyperpred::{run_matrix_workloads, run_workload, BenchResult, Experiment, Model, Pipeline};
use hyperpred_workloads::{all, by_name, Scale, Workload};

/// A machine-sharing pair: Figures 8 and 11 both schedule for 8-issue,
/// 1-branch (the compile cache must land hits) but simulate different
/// memory models.
fn experiments() -> Vec<Experiment> {
    vec![Experiment::fig8(), Experiment::fig11()]
}

/// Small but representative cells: branchy loop, memory traffic, calls,
/// plus one real mini from the suite.
fn workloads() -> Vec<Workload> {
    let branchy = Workload {
        name: "branchy",
        description: "if-else ladder in a loop (if-conversion target)",
        source: "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 400; i += 1) {
                if (i % 3 == 0) s += 5;
                else if (i % 5 == 0) s -= 2;
                else s += 1;
            }
            return s;
        }"
        .to_string(),
        args: vec![],
    };
    let memory = Workload {
        name: "memory",
        description: "array sweep with data-dependent stores (cache traffic)",
        source: "int t[256];
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 256; i += 1) { t[i] = i * 7 % 51; }
            for (i = 0; i < 256; i += 1) {
                if (t[i] > 25) s += t[i];
                else t[i] = s % 13;
            }
            return s + t[17];
        }"
        .to_string(),
        args: vec![],
    };
    let calls = Workload {
        name: "calls",
        description: "function calls exercising call/return scheduling",
        source: "int clamp(int v, int lo, int hi) {
            if (v < lo) return lo;
            if (v > hi) return hi;
            return v;
        }
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 300; i += 1) {
                s += clamp(i * 3 % 97 - 40, -25, 25);
            }
            return s + 1000;
        }"
        .to_string(),
        args: vec![],
    };
    vec![
        branchy,
        memory,
        calls,
        by_name("wc", Scale::Test).expect("workload"),
    ]
}

fn assert_same(a: &BenchResult, b: &BenchResult, what: &str) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.base, b.base, "{}: baseline stats differ ({what})", a.name);
    for (i, m) in Model::ALL.iter().enumerate() {
        assert_eq!(
            a.models[i], b.models[i],
            "{}: {m} stats differ ({what})",
            a.name
        );
    }
}

#[test]
fn matrix_matches_serial_at_any_thread_count() {
    let pipe = Pipeline::default();
    let exps = experiments();
    let wls = workloads();

    // Ground truth: the historical serial path.
    let serial: Vec<Vec<BenchResult>> = exps
        .iter()
        .map(|exp| {
            wls.iter()
                .map(|w| run_workload(w, exp, &pipe).expect("serial cell"))
                .collect()
        })
        .collect();

    for threads in [1, 4] {
        let out = run_matrix_workloads(&exps, &wls, &pipe, threads).expect("matrix");
        assert_eq!(out.figures.len(), serial.len());
        for (fig, ser) in out.figures.iter().zip(&serial) {
            for (a, b) in fig.iter().zip(ser) {
                assert_same(a, b, &format!("{threads} thread(s) vs serial"));
            }
        }
    }

    // While we have both figures: Figure 11 evaluates with 64K caches but
    // its speedup denominator must be the perfect-memory baseline,
    // identical to Figure 8's (the fixed run_workload bug).
    let out = run_matrix_workloads(&exps, &wls, &pipe, 2).expect("matrix");
    for (a, b) in out.figures[0].iter().zip(&out.figures[1]) {
        assert_eq!(a.base, b.base, "{}: denominators must match", a.name);
        assert_eq!(
            a.base.dcache_misses, 0,
            "{}: perfect-memory baseline cannot miss",
            a.name
        );
    }
}

/// The acceptance sweep: every benchmark in the suite, all three models,
/// through the engine — bit-identical to the serial path. One experiment
/// keeps the debug-build cost bounded; machine-sharing reuse across
/// experiments is covered above.
#[test]
fn full_suite_matrix_matches_serial() {
    let pipe = Pipeline::default();
    let exp = Experiment::fig8();
    let wls = all(Scale::Test);

    let serial: Vec<BenchResult> = wls
        .iter()
        .map(|w| run_workload(w, &exp, &pipe).expect("serial cell"))
        .collect();

    let out = run_matrix_workloads(&[exp], &wls, &pipe, 4).expect("matrix");
    assert_eq!(out.figures[0].len(), wls.len());
    for (a, b) in out.figures[0].iter().zip(&serial) {
        assert_same(a, b, "full suite, 4 threads vs serial");
    }

    // The model-independent front half is computed once per workload and
    // reused by the other three compiles (baseline + remaining models).
    let w = wls.len() as u64;
    assert_eq!(out.stats.front_computes, w);
    assert_eq!(out.stats.front_reuses, 3 * w);
}

#[test]
fn caches_deduplicate_compiles_and_baselines() {
    let pipe = Pipeline::default();
    let exps = experiments();
    let wls = workloads();
    let out = run_matrix_workloads(&exps, &wls, &pipe, 2).expect("matrix");

    // Figures 8 and 11 share a machine: each (workload, model) compiles
    // once and hits once. The baseline compile is shared too but only
    // requested by its single baseline cell.
    let w = wls.len() as u64;
    assert_eq!(
        out.stats.compile_hits,
        3 * w,
        "one hit per shared model cell"
    );
    // Distinct compiles per workload: baseline + fig8's three models
    // (fig11 fully reuses fig8's modules).
    assert_eq!(out.stats.compile_misses, 4 * w);
    // The denominator is simulated once per workload, not once per figure.
    assert_eq!(out.stats.baseline_sims, w);
    assert_eq!(out.stats.baseline_reuses, (exps.len() as u64 - 1) * w);
    // Every scheduled cell reported a wall time.
    assert_eq!(
        out.stats.cells.len(),
        wls.len() * (1 + 3 * exps.len()),
        "per-cell timing recorded"
    );
    // Cache counters must show real reuse for the acceptance criterion.
    assert!(out.stats.compile_hits > 0);
}
