//! Fault-injection suite: proves the matrix engine's containment
//! guarantees end to end. A deliberately panicking cell and a
//! watchdog-tripping cell run inside a small matrix next to healthy
//! workloads; under `KeepGoing` every healthy cell must come out
//! bit-identical to a clean serial run, and the failure report must name
//! exactly the injected cells with the right stage and payload.

use hyperpred::faults::{
    arm_flaky, cycle_hog_fixture, diverge_fixture, flaky_fixture, panic_fixture, DIVERGE_RESULT,
};
use hyperpred::sim::SimError;
use hyperpred::Model;
use hyperpred::{
    run_matrix_configured, run_matrix_workloads_policy, run_workload, CellOutcome, Experiment,
    FailurePayload, FailurePolicy, FailureStage, MatrixConfig, Pipeline, PipelineError,
    RetryPolicy,
};
use hyperpred_workloads::Workload;
use std::time::Duration;

/// Cycle budget for the injected experiment: far above the healthy
/// workloads (a few thousand cycles each) and far below the hog fixture.
const TEST_MAX_CYCLES: u64 = 50_000;

fn experiment() -> Experiment {
    let mut exp = Experiment::fig8();
    exp.max_cycles = TEST_MAX_CYCLES;
    exp
}

fn healthy() -> Vec<Workload> {
    let branchy = Workload {
        name: "branchy",
        description: "if-else ladder in a loop",
        source: "int main() {
            int i; int s; s = 0;
            for (i = 0; i < 400; i += 1) {
                if (i % 3 == 0) s += 5;
                else if (i % 5 == 0) s -= 2;
                else s += 1;
            }
            return s;
        }"
        .to_string(),
        args: vec![],
    };
    let calls = Workload {
        name: "calls",
        description: "call/return scheduling",
        source: "int clamp(int v, int lo, int hi) {
            if (v < lo) return lo;
            if (v > hi) return hi;
            return v;
        }
        int main() {
            int i; int s; s = 0;
            for (i = 0; i < 300; i += 1) {
                s += clamp(i * 3 % 97 - 40, -25, 25);
            }
            return s + 1000;
        }"
        .to_string(),
        args: vec![],
    };
    vec![branchy, calls]
}

#[test]
fn keep_going_contains_injected_faults() {
    let pipe = Pipeline {
        fault_injection: true,
        ..Pipeline::default()
    };
    let exp = experiment();

    let mut wls = healthy();
    let n_healthy = wls.len();
    wls.push(panic_fixture());
    wls.push(cycle_hog_fixture(100_000));

    let run = run_matrix_workloads_policy(&[exp], &wls, &pipe, 3, FailurePolicy::KeepGoing);

    // The report names exactly the injected workloads — never a healthy one.
    assert!(!run.report.is_empty(), "injected faults must be reported");
    for f in &run.report.failures {
        assert!(
            f.workload == "inject-panic" || f.workload == "inject-spin",
            "healthy cell {} must not appear in the report",
            f.workload
        );
        match f.workload {
            "inject-panic" => {
                assert_eq!(f.stage, FailureStage::Compile);
                match &f.payload {
                    FailurePayload::Panic(msg) => {
                        assert!(
                            msg.contains("injected compile-stage panic"),
                            "captured message should carry the panic text: {msg}"
                        );
                    }
                    other => panic!("inject-panic must fail as a captured panic, got {other}"),
                }
            }
            "inject-spin" => {
                assert_eq!(f.stage, FailureStage::Simulate);
                match &f.payload {
                    FailurePayload::Error(PipelineError::Sim(SimError::CycleLimit {
                        limit,
                        ..
                    })) => assert_eq!(*limit, TEST_MAX_CYCLES),
                    other => panic!("inject-spin must trip the watchdog, got {other}"),
                }
            }
            _ => unreachable!(),
        }
    }
    let mut failed: Vec<&str> = run.report.failures.iter().map(|f| f.workload).collect();
    failed.sort_unstable();
    failed.dedup();
    assert_eq!(failed, ["inject-panic", "inject-spin"]);

    // Both injected slots are marked failed in the assembled matrix.
    for (w, wl) in wls.iter().enumerate().skip(n_healthy) {
        assert!(
            matches!(run.outcomes[0][w], CellOutcome::Failed(_)),
            "{} slot must be Failed",
            wl.name
        );
    }

    // Every healthy cell is bit-identical to a clean serial run: the
    // injected neighbors may not perturb results in any way.
    let clean_pipe = Pipeline::default();
    for (w, wl) in wls.iter().take(n_healthy).enumerate() {
        let clean = run_workload(wl, &exp, &clean_pipe).expect("clean serial run");
        let got = run.outcomes[0][w]
            .ok()
            .unwrap_or_else(|| panic!("{} must complete despite injected neighbors", wl.name));
        assert_eq!(got.base, clean.base, "{}: baseline stats differ", wl.name);
        assert_eq!(got.models, clean.models, "{}: model stats differ", wl.name);
    }
}

/// A model whose simulated result disagrees with the baseline's must be
/// contained as a *typed* `Diverged` cell failure — historically this was
/// an `assert_eq!` that panicked straight through the fault isolation.
#[test]
fn keep_going_reports_divergence_as_cell_failure_not_panic() {
    let pipe = Pipeline {
        fault_injection: true,
        ..Pipeline::default()
    };
    let exp = experiment();

    let mut wls = healthy();
    let n_healthy = wls.len();
    wls.push(diverge_fixture());

    let run = run_matrix_workloads_policy(&[exp], &wls, &pipe, 2, FailurePolicy::KeepGoing);

    // Exactly the injected workload fails, with the typed payload naming
    // the diverging model and both results.
    assert!(!run.report.is_empty(), "divergence must be reported");
    for f in &run.report.failures {
        assert_eq!(f.workload, "inject-diverge");
        assert_eq!(f.stage, FailureStage::Simulate);
        match &f.payload {
            FailurePayload::Error(PipelineError::Diverged {
                workload,
                model,
                got,
                want,
            }) => {
                assert_eq!(*workload, "inject-diverge");
                assert_eq!(*model, Model::FullPred);
                assert_eq!(*got, DIVERGE_RESULT);
                assert_ne!(*got, *want);
            }
            other => panic!("divergence must surface as Diverged, got {other}"),
        }
    }
    assert!(
        matches!(run.outcomes[0][n_healthy], CellOutcome::Failed(_)),
        "diverged slot must be Failed"
    );

    // Healthy neighbors still complete, bit-identical to a clean run.
    let clean_pipe = Pipeline::default();
    for (w, wl) in wls.iter().take(n_healthy).enumerate() {
        let clean = run_workload(wl, &exp, &clean_pipe).expect("clean serial run");
        let got = run.outcomes[0][w]
            .ok()
            .unwrap_or_else(|| panic!("{} must complete despite the diverging neighbor", wl.name));
        assert_eq!(got.base, clean.base, "{}: baseline stats differ", wl.name);
        assert_eq!(got.models, clean.models, "{}: model stats differ", wl.name);
    }

    // The fixture is inert without injection: all three models agree.
    let clean =
        run_workload(&diverge_fixture(), &exp, &clean_pipe).expect("fixture is inert by default");
    for s in &clean.models {
        assert_eq!(s.ret, clean.base.ret);
    }
}

/// Transient failures are absorbed by the retry policy; failures that
/// outlive the retry budget become permanent and report their attempt
/// count. Both phases share one test because the flaky fixture's panic
/// budget is process-global.
#[test]
fn retry_policy_absorbs_transient_failures() {
    let pipe = Pipeline {
        fault_injection: true,
        ..Pipeline::default()
    };
    let exp = experiment();
    let wls = [flaky_fixture()];

    // Phase 1: two injected panics, three attempts allowed — the run must
    // come out clean, with the retries visible in the engine stats.
    arm_flaky(2);
    let run = run_matrix_configured(
        &[exp],
        &wls,
        &pipe,
        &MatrixConfig {
            threads: 1,
            policy: FailurePolicy::KeepGoing,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
            },
            ..MatrixConfig::default()
        },
    );
    assert!(
        run.report.is_empty(),
        "retries must absorb the transient panics: {}",
        run.report
    );
    assert!(
        run.outcomes[0][0].ok().is_some(),
        "the flaky cell must complete once the fault budget is spent"
    );
    assert!(
        run.stats.retries >= 2,
        "both injected panics cost an extra attempt, got {}",
        run.stats.retries
    );

    // Phase 2: more injected panics than the retry budget — the failure
    // becomes permanent and records how many attempts were spent.
    arm_flaky(100);
    let run = run_matrix_configured(
        &[experiment()],
        &wls,
        &pipe,
        &MatrixConfig {
            threads: 1,
            policy: FailurePolicy::KeepGoing,
            retry: RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
            },
            ..MatrixConfig::default()
        },
    );
    arm_flaky(0); // disarm: no budget may leak into other tests
    assert!(!run.report.is_empty(), "exhausted retries must be reported");
    for f in &run.report.failures {
        assert_eq!(f.workload, "inject-flaky");
        assert_eq!(
            f.attempts, 2,
            "a permanent failure records every attempt spent"
        );
        assert!(
            f.to_string().contains("2 attempts"),
            "the report surfaces the attempt count: {f}"
        );
    }
}

/// A runaway cell with an effectively unlimited *cycle* budget must still
/// be stopped by the per-cell wall-clock deadline, surfacing as a typed
/// `Deadline` failure rather than a hang.
#[test]
fn wall_clock_deadline_stops_runaway_cells() {
    let pipe = Pipeline {
        fault_injection: true,
        ..Pipeline::default()
    };
    // Default fig8 cycle budget (effectively unlimited here): only the
    // wall-clock deadline can stop the hog.
    let exp = Experiment::fig8();
    let wls = [cycle_hog_fixture(8_000_000)];

    let run = run_matrix_configured(
        &[exp],
        &wls,
        &pipe,
        &MatrixConfig {
            threads: 2,
            policy: FailurePolicy::KeepGoing,
            deadline: Some(Duration::from_millis(100)),
            ..MatrixConfig::default()
        },
    );
    assert!(!run.report.is_empty(), "the hog must trip the deadline");
    for f in &run.report.failures {
        assert_eq!(f.workload, "inject-spin");
        assert_eq!(f.stage, FailureStage::Simulate);
        match &f.payload {
            FailurePayload::Error(PipelineError::Sim(SimError::Deadline { insts })) => {
                assert!(*insts > 0, "the deadline fired mid-simulation");
            }
            other => panic!("the hog must fail with a Deadline payload, got {other}"),
        }
    }
    assert!(matches!(run.outcomes[0][0], CellOutcome::Failed(_)));
}

#[test]
fn fail_fast_aborts_after_first_failure() {
    let pipe = Pipeline {
        fault_injection: true,
        ..Pipeline::default()
    };
    let exp = experiment();

    // The panic fixture is workload 0, so its baseline compile is the
    // first queued cell; with one worker the abort is deterministic.
    let mut wls = vec![panic_fixture()];
    wls.extend(healthy());

    let run = run_matrix_workloads_policy(&[exp], &wls, &pipe, 1, FailurePolicy::FailFast);

    assert_eq!(run.report.len(), 1, "fail-fast stops at the first failure");
    assert_eq!(run.report.failures[0].workload, "inject-panic");
    assert!(matches!(run.outcomes[0][0], CellOutcome::Failed(_)));
    for (w, wl) in wls.iter().enumerate().skip(1) {
        assert!(
            matches!(run.outcomes[0][w], CellOutcome::Skipped),
            "{} must be abandoned, not run",
            wl.name
        );
    }
}
