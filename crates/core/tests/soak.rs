//! Soak-engine suite: generated programs must pass the full cross-model
//! oracle battery, a killed run must resume from its journal
//! bit-identically, a sabotaged build must leave a reproducible
//! minimized bundle, and pathological growth must degrade to a typed
//! budget failure — never a hang.

use hyperpred::{
    load_bundle, run_soak, triage, Model, Pipeline, PipelineError, SoakConfig, Stage, TriageConfig,
};
use hyperpred_sched::MachineConfig;
use hyperpred_workloads::gen::{generate, Profile};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// The journal's cell records (everything but the meta line), sorted —
/// the order cells land in depends on interleaving, their bytes do not.
fn cell_records(path: &PathBuf) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .expect("journal readable")
        .lines()
        .filter(|l| !l.contains("\"kind\":\"meta\""))
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn soak_runs_clean_and_resumes_bit_identically() {
    let dir = tmpdir("soak-resume");
    let journal_a = dir.join("a.jsonl");
    let mut cfg = SoakConfig::new(7, 6);
    cfg.journal = Some(journal_a.clone());

    // First invocation stops early — the in-process stand-in for a kill.
    cfg.cell_limit = Some(3);
    let first = run_soak(&cfg).expect("soak runs");
    assert!(first.interrupted, "cell_limit must interrupt");
    assert_eq!(first.ran, 3);
    assert_eq!(
        first.failures.len(),
        0,
        "generated programs must pass the oracle battery: {:?}",
        first.failures
    );

    // Resume with the same journal: only the missing programs run.
    cfg.cell_limit = None;
    let second = run_soak(&cfg).expect("soak resumes");
    assert!(second.ok(), "failures: {:?}", second.failures);
    assert_eq!(second.skipped, 3, "journaled programs must be skipped");
    assert_eq!(second.ran, 3);

    // The interrupted+resumed journal is bit-identical (as a set of cell
    // records) to one from an uninterrupted scratch run.
    let journal_b = dir.join("b.jsonl");
    let mut scratch_cfg = cfg.clone();
    scratch_cfg.journal = Some(journal_b.clone());
    let scratch = run_soak(&scratch_cfg).expect("scratch soak runs");
    assert!(scratch.ok());
    assert_eq!(scratch.ran, 6);
    assert_eq!(
        cell_records(&journal_a),
        cell_records(&journal_b),
        "resumed and scratch journals must hold identical cell records"
    );

    // A third run over the merged journal does nothing at all.
    let third = run_soak(&cfg).expect("soak re-opens");
    assert_eq!(third.skipped, 6);
    assert_eq!(third.ran, 0);
    assert_eq!(third.journal_corrupt, 0);
}

#[test]
fn sabotaged_soak_emits_a_reproducible_minimized_bundle() {
    let dir = tmpdir("soak-sabotage");
    let mut cfg = SoakConfig::new(3, 1);
    cfg.sabotage = Some(Stage::Promote);
    cfg.widths = vec![(4, 1)]; // one width keeps minimization probes cheap
    cfg.triage = Some(TriageConfig::new(dir.join("triage")));

    let report = run_soak(&cfg).expect("soak runs");
    assert_eq!(report.failures.len(), 1, "sabotage must fail the program");
    let failure = &report.failures[0];
    assert_eq!(
        failure.signature, "lint: after pass `promote`",
        "the checkpoint after the sabotaged pass takes the blame"
    );
    let bundle_dir = failure.bundle.clone().expect("a bundle was written");

    // `hyperpredc repro` replays the bundle through the soak battery
    // (the recorded sabotage included) and confirms the signature.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hyperpredc"))
        .arg("repro")
        .arg(&bundle_dir)
        .output()
        .expect("spawn hyperpredc repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "repro of a sabotaged build exits 1\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    // The minimized source is strictly no larger and fails identically.
    let bundle = load_bundle(&bundle_dir).expect("bundle loads");
    assert_eq!(bundle.cell.sabotage, Some(Stage::Promote));
    let minimized = std::fs::read_to_string(bundle_dir.join("minimized.c"))
        .expect("sabotage bundles carry a source-level minimization");
    assert!(
        minimized.lines().count() < bundle.source.lines().count(),
        "the generated program has droppable statements"
    );
    assert_eq!(
        triage::replay(&bundle.cell, &minimized).as_deref(),
        Some(bundle.cell.signature.as_str()),
        "minimized.c must still trigger the recorded signature"
    );
}

#[test]
fn pathological_growth_degrades_typed_never_hangs() {
    // Nasty-profile programs invite deep unrolling and hyperblock tail
    // duplication; with tiny growth budgets every compile must either
    // finish via the degradation ladder or fail with a typed Budget —
    // and at least one seed must actually trip a budget, or the pin
    // proves nothing.
    let machine = MachineConfig::new(8, 2);
    let mut tripped = 0usize;
    for seed in 0..8u64 {
        let prog = generate(Profile::Nasty, seed);
        let mut pipe = Pipeline {
            checks: true,
            ..Pipeline::default()
        };
        pipe.unroll.factor = 8;
        pipe.unroll.max_growth_insts = 4;
        pipe.hyperblock.max_growth_insts = 4;
        match pipe.compile_degraded(&prog.source, &prog.args, Model::FullPred, &machine) {
            Ok((_, deg)) => {
                if deg.is_degraded() {
                    tripped += 1;
                }
            }
            // The ladder exhausting itself is still a typed, contained
            // failure — the forbidden outcomes (hang, OOM, panic) never
            // return at all.
            Err(PipelineError::Budget { .. }) => tripped += 1,
            Err(e) => panic!("seed {seed}: unexpected failure {e}"),
        }
    }
    assert!(
        tripped > 0,
        "tiny growth budgets must trip on at least one nasty program"
    );
}
