//! Property fuzz over damaged stores and run journals: random byte
//! corruption and truncation injected into segment and journal files.
//! The readers must never panic, must count corrupt lines exactly, must
//! keep serving every undamaged record bit-identically — and must never
//! serve a damaged one (the checksum suffix catches what JSON-shape
//! validation alone cannot).

use hyperpred::{JournalEntry, RunJournal, Store};
use hyperpred_sim::SimStats;
use proptest::prelude::*;
use std::path::PathBuf;

const CELLS: u64 = 6;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn stats_for(i: u64) -> SimStats {
    SimStats {
        cycles: 5_000 + i * 17,
        insts: 9_000 + i * 11,
        nullified: i % 4,
        branches: 200 + i,
        mispredicts: i % 2,
        loads: 60 + i * 3,
        stores: 30 + i,
        icache_misses: 0,
        dcache_misses: 0,
        ret: i as i64 * 2,
    }
}

fn fp_for(i: u64) -> String {
    format!("v1|fuzz{:016x}|wl-{}|fuzztest", i * 0x6c62272e, i)
}

fn entry<'a>(fp: &'a str, stats: &'a SimStats) -> JournalEntry<'a> {
    JournalEntry {
        fingerprint: fp,
        workload: "wl",
        experiment: "fuzz-test",
        model: None,
        stats,
    }
}

/// Writes a fresh single-segment store with [`CELLS`] records; returns
/// (dir, segment file, its content). Line 0 is the meta line; cell `i`
/// is line `i + 1`.
fn build_segment(name: &str) -> (PathBuf, PathBuf, String) {
    let dir = tmpdir(name);
    let seg = {
        let store = Store::open(&dir).expect("open store");
        for i in 0..CELLS {
            let fp = fp_for(i);
            store.put(&entry(&fp, &stats_for(i))).expect("put");
        }
        store.sync().expect("sync");
        store.segment_path()
    };
    let content = std::fs::read_to_string(&seg).expect("read segment");
    (dir, seg, content)
}

/// Writes a fresh journal with [`CELLS`] records; returns (path, content).
/// Same layout: meta line first, cell `i` on line `i + 1`.
fn build_journal(name: &str) -> (PathBuf, String) {
    let path = tmpdir(name).join("journal.jsonl");
    {
        let journal = RunJournal::open(&path).expect("open journal");
        for i in 0..CELLS {
            let fp = fp_for(i);
            journal.record(&entry(&fp, &stats_for(i))).expect("record");
        }
    }
    let content = std::fs::read_to_string(&path).expect("read journal");
    (path, content)
}

/// Flips one ASCII digit of cell line `victim` to a different digit,
/// skipping the schema-version digit (changing the version makes the
/// line a *foreign* cell, which is an expected skip, not corruption).
/// Returns the damaged whole-file content.
fn flip_digit(content: &str, victim: u64, pos_seed: u64, delta: u64) -> String {
    let mut lines: Vec<String> = content.lines().map(str::to_string).collect();
    let line = &lines[victim as usize + 1];
    let version_at = line.find("\"version\":").expect("version field") + "\"version\":".len();
    let digits: Vec<usize> = line
        .char_indices()
        .filter(|&(i, c)| c.is_ascii_digit() && i != version_at)
        .map(|(i, _)| i)
        .collect();
    let pos = digits[pos_seed as usize % digits.len()];
    let old = line.as_bytes()[pos] - b'0';
    let new = (u64::from(old) + delta) % 10;
    let mut bytes = line.clone().into_bytes();
    bytes[pos] = new as u8 + b'0';
    lines[victim as usize + 1] = String::from_utf8(bytes).expect("still utf-8");
    format!("{}\n", lines.join("\n"))
}

/// Byte offset one past the end (including newline) of each line.
fn line_ends(content: &str) -> Vec<usize> {
    content
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .map(|(i, _)| i + 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn segment_digit_flip_is_caught_exactly(
        victim in 0u64..CELLS,
        pos_seed in any::<u64>(),
        delta in 1u64..10,
    ) {
        let (dir, seg, content) = build_segment("fuzz-seg-flip");
        std::fs::write(&seg, flip_digit(&content, victim, pos_seed, delta))
            .expect("write damage");

        let store = Store::open(&dir).expect("open never fails on damage");
        prop_assert_eq!(store.corrupt(), 1, "exactly the flipped line is corrupt");
        prop_assert!(
            store.get(&fp_for(victim)).is_none(),
            "a checksum-failing record must never be served"
        );
        for i in (0..CELLS).filter(|&i| i != victim) {
            prop_assert_eq!(store.get(&fp_for(i)), Some(stats_for(i)));
        }
    }

    #[test]
    fn segment_truncation_loses_only_the_tail(cut_seed in any::<u64>()) {
        let (dir, seg, content) = build_segment("fuzz-seg-trunc");
        let cut = cut_seed as usize % (content.len() + 1);
        std::fs::write(&seg, &content.as_bytes()[..cut]).expect("truncate");

        let ends = line_ends(&content);
        let store = Store::open(&dir).expect("open never fails on truncation");
        prop_assert_eq!(store.corrupt(), 0, "a torn tail is expected, not corruption");
        for i in 0..CELLS {
            let intact = ends[i as usize + 1] <= cut;
            prop_assert_eq!(
                store.get(&fp_for(i)),
                intact.then(|| stats_for(i)),
                "cell {} must survive iff its line is fully on disk (cut {})",
                i,
                cut
            );
        }
    }

    #[test]
    fn segment_random_damage_never_panics_or_lies(
        pos_seed in any::<u64>(),
        value in any::<u8>(),
    ) {
        let (dir, seg, content) = build_segment("fuzz-seg-byte");
        let pos = pos_seed as usize % content.len();
        let mut bytes = content.clone().into_bytes();
        bytes[pos] = value;
        std::fs::write(&seg, &bytes).expect("write damage");

        let store = Store::open(&dir).expect("open never fails on damage");
        prop_assert!(store.len() as u64 <= CELLS, "damage can never invent records");
        // Safety: anything served is bit-identical to what was written.
        for i in 0..CELLS {
            if let Some(served) = store.get(&fp_for(i)) {
                prop_assert_eq!(served, stats_for(i));
            }
        }
        // Liveness: a line whose bytes (and the newline guarding its
        // start) are untouched is still served.
        let ends = line_ends(&content);
        for i in 0..CELLS {
            let start = ends[i as usize];
            let end = ends[i as usize + 1];
            if !(start..end).contains(&pos) && pos != start.wrapping_sub(1) {
                prop_assert_eq!(store.get(&fp_for(i)), Some(stats_for(i)));
            }
        }
    }

    #[test]
    fn journal_digit_flip_is_caught_exactly(
        victim in 0u64..CELLS,
        pos_seed in any::<u64>(),
        delta in 1u64..10,
    ) {
        let (path, content) = build_journal("fuzz-jnl-flip");
        std::fs::write(&path, flip_digit(&content, victim, pos_seed, delta))
            .expect("write damage");

        let journal = RunJournal::open(&path).expect("open never fails on damage");
        prop_assert_eq!(journal.corrupt(), 1);
        prop_assert!(journal.lookup(&fp_for(victim)).is_none());
        for i in (0..CELLS).filter(|&i| i != victim) {
            prop_assert_eq!(journal.lookup(&fp_for(i)), Some(stats_for(i)));
        }
    }

    #[test]
    fn journal_truncation_loses_only_the_tail(cut_seed in any::<u64>()) {
        let (path, content) = build_journal("fuzz-jnl-trunc");
        let cut = cut_seed as usize % (content.len() + 1);
        std::fs::write(&path, &content.as_bytes()[..cut]).expect("truncate");

        let ends = line_ends(&content);
        let journal = RunJournal::open(&path).expect("open never fails on truncation");
        prop_assert_eq!(journal.corrupt(), 0);
        for i in 0..CELLS {
            let intact = ends[i as usize + 1] <= cut;
            prop_assert_eq!(journal.lookup(&fp_for(i)), intact.then(|| stats_for(i)));
        }
    }

    #[test]
    fn journal_random_damage_never_panics_or_lies(
        pos_seed in any::<u64>(),
        value in any::<u8>(),
    ) {
        let (path, content) = build_journal("fuzz-jnl-byte");
        let pos = pos_seed as usize % content.len();
        let mut bytes = content.clone().into_bytes();
        bytes[pos] = value;
        std::fs::write(&path, &bytes).expect("write damage");

        let journal = RunJournal::open(&path).expect("open never fails on damage");
        prop_assert!(journal.len() as u64 <= CELLS);
        for i in 0..CELLS {
            if let Some(served) = journal.lookup(&fp_for(i)) {
                prop_assert_eq!(served, stats_for(i));
            }
        }
    }
}
