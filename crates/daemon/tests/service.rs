//! End-to-end daemon suite: a real `hyperpredd` instance on an
//! OS-assigned port, driven over TCP with the same client the
//! `bench-load` generator uses. Pins the service contract the CI smoke
//! job relies on: a repeated batch is answered entirely from the store
//! with bit-identical stats, malformed requests get typed errors (never
//! a worker abort), the bounded queue rejects with a typed answer, and
//! shutdown drains cleanly.

use hyperpred::service::{
    self, get_u64, http_call, http_post, parse_batch_response, CellStatus, LoadConfig,
};
use hyperpred::{CellRequest, Client, ClientConfig, Model};
use hyperpred_daemon::{Daemon, DaemonConfig};
use hyperpred_sim::{MemoryModel, DEFAULT_CYCLE_LIMIT};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn start_daemon(store: &str, max_active: usize, max_waiting: usize) -> Daemon {
    Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: tmpdir(store),
        max_active,
        max_waiting,
        ..DaemonConfig::default()
    })
    .expect("start daemon")
}

#[test]
fn repeat_batch_is_served_from_cache_bit_identically() {
    let daemon = start_daemon("daemon-repeat", 0, 64);
    let cfg = LoadConfig {
        addr: daemon.addr().to_string(),
        cells: 30,
        batch: 10,
        seed: 7,
        issue: 4,
        branches: 1,
        ..LoadConfig::default()
    };
    let reqs = service::load_requests(&cfg);
    assert_eq!(reqs.len(), 30);

    // Cold pass: nothing in the store, every cell computes (or fails
    // deterministically — generated programs all pass the pipeline).
    let (cold, cold_resps) = service::run_load(&cfg, &reqs).expect("cold pass");
    assert_eq!(cold.sent, 30);
    assert_eq!(cold.failed, 0, "{cold_resps:?}");
    assert_eq!(cold.rejected, 0);
    assert_eq!(cold.conflicts, 0);
    assert_eq!(cold.computed + cold.hits, 30);

    // Warm pass: the identical request stream must be answered 100%
    // from the store, stats bit-identical to the cold pass.
    let (warm, warm_resps) = service::run_load(&cfg, &reqs).expect("warm pass");
    assert_eq!(warm.hits, 30, "warm pass must be all cache hits");
    assert_eq!(warm.computed, 0);
    assert!((warm.hit_rate - 1.0).abs() < 1e-9);
    for (c, w) in cold_resps.iter().zip(&warm_resps) {
        assert_eq!(w.status, CellStatus::Hit);
        assert_eq!(c.fingerprint, w.fingerprint);
        assert_eq!(c.stats, w.stats, "stats must be bit-identical");
        assert!(c.stats.is_some());
    }

    // The stats endpoint agrees with the client-side tallies.
    let (status, body) = http_call(&cfg.addr, "GET", "/v1/stats", "").expect("stats");
    assert_eq!(status, 200);
    assert_eq!(get_u64(&body, "hits"), Some(30));
    assert_eq!(get_u64(&body, "computed"), Some(cold.computed as u64));
    assert_eq!(get_u64(&body, "store_conflicts"), Some(0));

    // Graceful shutdown drains and joins cleanly.
    daemon.request_shutdown();
    daemon.wait();
}

#[test]
fn malformed_requests_get_typed_errors_not_aborts() {
    let daemon = start_daemon("daemon-malformed", 0, 8);
    let addr = daemon.addr().to_string();

    // Unparseable body: typed 400, not a dropped connection.
    let (status, body) = http_post(&addr, "/v1/cell", "this is not json").expect("post garbage");
    assert_eq!(status, 400, "{body}");

    // Parseable but invalid: a zero issue width must come back as a
    // structured per-cell failure, never a worker abort.
    let req = CellRequest {
        name: "bad-width".to_string(),
        source: "int main() { return 0; }".to_string(),
        args: vec![],
        model: Model::FullPred,
        issue: 0,
        branches: 1,
        memory: MemoryModel::Perfect,
        max_cycles: DEFAULT_CYCLE_LIMIT,
    };
    let (status, body) =
        http_post(&addr, "/v1/cell", &service::request_to_json(&req)).expect("post invalid");
    assert_eq!(status, 200, "{body}");
    let resp = service::parse_response(&body).expect("typed response");
    assert_eq!(resp.status, CellStatus::Failed);
    assert_eq!(resp.stage.as_deref(), Some("compile"));
    assert!(resp.error.is_some());

    // A source that fails to compile is also a typed failure.
    let req = CellRequest {
        name: "syntax-error".to_string(),
        source: "int main( { return; }".to_string(),
        issue: 4,
        ..req
    };
    let (status, body) =
        http_post(&addr, "/v1/cell", &service::request_to_json(&req)).expect("post broken source");
    assert_eq!(status, 200, "{body}");
    let resp = service::parse_response(&body).expect("typed response");
    assert_eq!(resp.status, CellStatus::Failed);
    assert_eq!(resp.stage.as_deref(), Some("compile"));

    // Unknown endpoints 404; the daemon still answers afterwards.
    let (status, _) = http_post(&addr, "/v1/nope", "{}").expect("post unknown path");
    assert_eq!(status, 404);
    let (status, _) = http_call(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);

    daemon.request_shutdown();
    daemon.wait();
}

#[test]
fn full_queue_returns_typed_rejection() {
    // One compute slot, zero queue depth: concurrent distinct cells
    // must be rejected with the typed backpressure answer while the
    // first one holds the slot.
    let daemon = start_daemon("daemon-queue", 1, 0);
    let addr = daemon.addr().to_string();

    let slow_source = |salt: u64| {
        format!(
            "int main() {{
                int i; int s; s = {salt};
                for (i = 0; i < 400000; i += 1) {{
                    if (i % 3 == 0) s += i; else s -= 1;
                }}
                return s;
            }}"
        )
    };
    let reqs: Vec<CellRequest> = (0..4)
        .map(|salt| CellRequest {
            name: format!("slow-{salt}"),
            source: slow_source(salt),
            args: vec![],
            model: Model::Superblock,
            issue: 4,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: DEFAULT_CYCLE_LIMIT,
        })
        .collect();

    let handles: Vec<_> = reqs
        .iter()
        .map(|req| {
            let addr = addr.clone();
            let body = service::request_to_json(req);
            std::thread::spawn(move || {
                let (status, body) = http_post(&addr, "/v1/cell", &body).expect("post cell");
                assert_eq!(status, 200, "{body}");
                service::parse_response(&body).expect("typed response")
            })
        })
        .collect();
    let resps: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    let served = resps
        .iter()
        .filter(|r| r.status == CellStatus::Hit || r.status == CellStatus::Computed)
        .count();
    let rejected: Vec<_> = resps
        .iter()
        .filter(|r| r.status == CellStatus::Rejected)
        .collect();
    assert!(served >= 1, "{resps:?}");
    assert!(
        !rejected.is_empty(),
        "four concurrent cells against a one-slot, zero-queue gate \
         must overflow: {resps:?}"
    );
    for r in &rejected {
        let msg = r
            .error
            .as_deref()
            .expect("typed rejection carries a reason");
        assert!(msg.contains("queue full"), "{msg}");
    }

    // Rejection is backpressure, not failure: a retry once the slot is
    // free succeeds, and cached answers bypass the gate entirely.
    let (status, body) =
        http_post(&addr, "/v1/cell", &service::request_to_json(&reqs[0])).expect("retry");
    assert_eq!(status, 200);
    let resp = service::parse_response(&body).expect("typed response");
    assert!(
        resp.status == CellStatus::Hit || resp.status == CellStatus::Computed,
        "{resp:?}"
    );

    daemon.request_shutdown();
    daemon.wait();
}

#[test]
fn batch_endpoint_answers_every_cell_in_order() {
    let daemon = start_daemon("daemon-batch", 0, 16);
    let addr = daemon.addr().to_string();
    let reqs: Vec<CellRequest> = (0..3)
        .map(|i| CellRequest {
            name: format!("ret-{i}"),
            source: format!("int main() {{ return {i}; }}"),
            args: vec![],
            model: Model::FullPred,
            issue: 2,
            branches: 1,
            memory: MemoryModel::Perfect,
            max_cycles: DEFAULT_CYCLE_LIMIT,
        })
        .collect();
    let (status, body) =
        http_post(&addr, "/v1/cells", &service::batch_to_json(&reqs)).expect("post batch");
    assert_eq!(status, 200, "{body}");
    let resps = parse_batch_response(&body).expect("batch response");
    assert_eq!(resps.len(), 3);
    for (i, r) in resps.iter().enumerate() {
        assert_eq!(r.status, CellStatus::Computed, "{r:?}");
        let stats = r.stats.as_ref().expect("computed stats");
        assert_eq!(stats.ret, i as i64, "cells answered in request order");
    }

    daemon.request_shutdown();
    daemon.wait();
}

#[test]
fn draining_daemon_answers_healthz_with_503() {
    let daemon = start_daemon("daemon-drain", 0, 8);
    let addr = daemon.addr().to_string();
    let (status, body) = http_call(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    // Hold an accepted connection open so the daemon stays in the
    // draining state (instead of exiting instantly) after shutdown.
    let held = std::net::TcpStream::connect(&addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));
    daemon.request_shutdown();

    // Late arrivals must get the typed 503 draining answer — never a
    // connection refused/reset, which a client cannot tell from a crash.
    let mut saw_draining = false;
    for _ in 0..100 {
        match http_call(&addr, "GET", "/healthz", "") {
            Ok((503, body)) if body.contains("draining") => {
                saw_draining = true;
                break;
            }
            Ok((200, _)) => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("draining healthz must stay typed, got {other:?}"),
        }
    }
    assert!(saw_draining, "healthz must report draining during shutdown");
    drop(held);
    daemon.wait();
}

#[test]
fn client_retries_queue_full_rejections_until_served() {
    // One compute slot, zero queue: two clients racing distinct slow
    // cells must see typed rejections, and the retrying client must
    // absorb them — every cell ends Hit/Computed, never Rejected.
    let daemon = start_daemon("daemon-client-retry", 1, 0);
    let addr = daemon.addr().to_string();

    let slow_cell = |salt: u64| CellRequest {
        name: format!("retry-{salt}"),
        source: format!(
            "int main() {{
                int i; int s; s = {salt};
                for (i = 0; i < 400000; i += 1) {{
                    if (i % 3 == 0) s += i; else s -= 1;
                }}
                return s;
            }}"
        ),
        args: vec![],
        model: Model::Superblock,
        issue: 4,
        branches: 1,
        memory: MemoryModel::Perfect,
        max_cycles: DEFAULT_CYCLE_LIMIT,
    };

    let handles: Vec<_> = [0u64, 2]
        .into_iter()
        .map(|base| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = Client::new(ClientConfig {
                    addr,
                    max_attempts: 20,
                    backoff: Duration::from_millis(100),
                    backoff_max: Duration::from_millis(500),
                    jitter_seed: base,
                    ..ClientConfig::default()
                });
                let reqs = vec![slow_cell(base), slow_cell(base + 1)];
                let resps = client.post_cells(&reqs).expect("post_cells");
                (resps, client.retries())
            })
        })
        .collect();

    let mut total_retries = 0;
    for h in handles {
        let (resps, retries) = h.join().expect("client thread");
        total_retries += retries;
        for r in &resps {
            assert!(
                r.status == CellStatus::Hit || r.status == CellStatus::Computed,
                "retrying client must outlast backpressure: {r:?}"
            );
        }
    }
    assert!(
        total_retries > 0,
        "a one-slot zero-queue gate under two concurrent clients must \
         reject at least once"
    );

    daemon.request_shutdown();
    daemon.wait();
}
