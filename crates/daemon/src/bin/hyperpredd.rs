//! `hyperpredd` binary: flag parsing, signal wiring, and the serve loop.
//!
//! ```text
//! hyperpredd --addr 127.0.0.1:7199 --store hyperpredd-store \
//!            [--workers N] [--queue N] [--max-conns N] \
//!            [--retries N] [--deadline-ms MS] [--no-degrade] [--sync N]
//! ```
//!
//! `--sync N` fsyncs the store once every N appends (`0` = never from
//! the append path, `1` = every append).
//!
//! SIGTERM and SIGINT both trigger a graceful drain: the acceptor stops,
//! every accepted connection (and every cell inside it) completes, then
//! the process exits 0.

use hyperpred::{RequestConfig, RetryPolicy, SyncPolicy};
use hyperpred_daemon::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The flag the signal handler flips (handlers may only touch statics).
static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)` — std links libc on every supported platform, so
    /// declaring it directly avoids a dependency the image doesn't have.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn on_signal(_sig: i32) {
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::Release);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: hyperpredd [--addr HOST:PORT] [--store DIR] [--workers N] \
         [--queue N] [--max-conns N] [--retries N] [--deadline-ms MS] [--no-degrade] [--sync N]"
    );
    std::process::exit(2);
}

fn parse_args() -> DaemonConfig {
    let mut cfg = DaemonConfig::default();
    let mut retry = RetryPolicy {
        max_attempts: 2,
        backoff: Duration::from_millis(10),
    };
    let mut deadline = Some(Duration::from_secs(30));
    let mut degrade = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("hyperpredd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--store" => cfg.store_dir = PathBuf::from(value("--store")),
            "--workers" => cfg.max_active = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => cfg.max_waiting = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                cfg.max_connections = value("--max-conns").parse().unwrap_or_else(|_| usage())
            }
            "--retries" => {
                retry.max_attempts = value("--retries").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--sync" => {
                cfg.sync = match value("--sync").parse().unwrap_or_else(|_| usage()) {
                    0 => SyncPolicy::Never,
                    1 => SyncPolicy::Always,
                    n => SyncPolicy::EveryN(n),
                };
            }
            "--no-degrade" => degrade = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("hyperpredd: unknown flag {other}");
                usage();
            }
        }
    }
    cfg.request = RequestConfig {
        retry,
        deadline,
        degrade,
    };
    cfg
}

fn main() {
    let cfg = parse_args();
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hyperpredd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    let _ = SHUTDOWN.set(daemon.shutdown_flag());
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    daemon.wait();
}
