//! `hyperpredd` — the long-running compile-and-simulate service.
//!
//! The daemon accepts MiniC sources plus machine/model parameters over a
//! local HTTP API (see [`hyperpred::service`] for the wire protocol),
//! runs each cell through the engine's contained request path
//! ([`hyperpred::run_request`] — panic capture, bounded retries,
//! cooperative deadlines, budget degradation), and serves results from a
//! persistent content-addressed [`Store`] keyed by the journal
//! fingerprint. A repeated request never recomputes: it is answered
//! bit-identically from the store.
//!
//! # Bounded queues and backpressure
//!
//! Two bounds keep a flood typed instead of fatal:
//!
//! * **Connections** — at most [`DaemonConfig::max_connections`]
//!   connection threads; excess connections get an immediate `503` and
//!   close. Memory per connection is bounded by the wire-level body cap.
//! * **Compute** — at most [`DaemonConfig::max_active`] cells compile or
//!   simulate concurrently, with at most [`DaemonConfig::max_waiting`]
//!   queued behind them; a cell past both bounds is answered with the
//!   typed `rejected` status (retry later), never queued unboundedly.
//!   Cache hits bypass the gate entirely — a warm store serves them at
//!   index-lookup speed.
//!
//! # Shutdown
//!
//! [`Daemon::request_shutdown`] (the binary wires SIGTERM/SIGINT to it)
//! flips the daemon into a *draining* state: connections already
//! accepted — and every cell in them — run to completion, while new
//! connections (and `GET /healthz`) are answered with a typed `503
//! draining` so load balancers and retrying clients move on instead of
//! hanging. Once the last connection drains, the store is fsynced and
//! [`Daemon::wait`] returns. Nothing in flight is dropped; a hard kill
//! loses at most records since the last fsync (see
//! [`hyperpred::SyncPolicy`]), recoverable with `hyperpredc fsck`.

use hyperpred::journal::JournalEntry;
use hyperpred::service::{
    batch_response_to_json, parse_batch, parse_request, read_http_request, response_to_json,
    write_http_response, CellResponse, CellStatus,
};
use hyperpred::{
    request_fingerprint, run_request, triage, CellRequest, Pipeline, RequestConfig, Store,
    StoreConfig, SyncPolicy,
};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// Concurrent compute slots (0 = one per available core).
    pub max_active: usize,
    /// Cells allowed to queue behind the active ones before the typed
    /// `rejected` answer.
    pub max_waiting: usize,
    /// Concurrent connection threads before an immediate `503`.
    pub max_connections: usize,
    /// Retry/deadline/degradation policy for every computed cell.
    pub request: RequestConfig,
    /// Store fsync policy — how many acked appends a power loss may cost.
    pub sync: SyncPolicy,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:7199".to_string(),
            store_dir: PathBuf::from("hyperpredd-store"),
            max_active: 0,
            max_waiting: 64,
            max_connections: 32,
            request: RequestConfig::default(),
            sync: SyncPolicy::default(),
        }
    }
}

/// Monotonic service counters (served by `GET /v1/stats`).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    computed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    conflicts: AtomicU64,
    busy: AtomicU64,
}

/// The bounded compute gate: `max_active` concurrent computes,
/// `max_waiting` queued behind them, typed rejection past both.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: usize,
    max_waiting: usize,
}

#[derive(Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// RAII compute slot; releasing wakes one waiter.
struct GateGuard<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new(max_active: usize, max_waiting: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
        }
    }

    /// Claims a compute slot, waiting in the bounded queue if necessary.
    ///
    /// # Errors
    /// The typed backpressure message when the queue is full.
    fn acquire(&self) -> Result<GateGuard<'_>, String> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.active < self.max_active {
            st.active += 1;
            return Ok(GateGuard { gate: self });
        }
        if st.waiting >= self.max_waiting {
            return Err(format!(
                "queue full ({} active, {} waiting); retry later",
                st.active, st.waiting
            ));
        }
        st.waiting += 1;
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if st.active < self.max_active {
                st.waiting -= 1;
                st.active += 1;
                return Ok(GateGuard { gate: self });
            }
        }
    }

    fn depth(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        (st.active, st.waiting)
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut st = self
            .gate
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.active -= 1;
        drop(st);
        self.gate.cv.notify_one();
    }
}

/// Shared daemon state.
struct Inner {
    cfg: DaemonConfig,
    store: Store,
    pipe: Pipeline,
    gate: Gate,
    shutdown: Arc<AtomicBool>,
    conns: Mutex<usize>,
    conns_cv: Condvar,
    stats: Counters,
}

/// A running daemon. Dropping it without [`Daemon::wait`] detaches the
/// threads; the binary always waits.
pub struct Daemon {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, opens the store, and starts the acceptor.
    ///
    /// # Errors
    /// Bind or store-open failures.
    pub fn start(cfg: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept + a short sleep lets the loop observe the
        // shutdown flag without any wake-up connection machinery (a
        // signal handler can only touch atomics).
        listener.set_nonblocking(true)?;
        let store = Store::open_with(
            &cfg.store_dir,
            StoreConfig {
                sync: cfg.sync,
                ..StoreConfig::default()
            },
        )?;
        let max_active = if cfg.max_active == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            cfg.max_active
        };
        let inner = Arc::new(Inner {
            gate: Gate::new(max_active, cfg.max_waiting),
            cfg,
            store,
            pipe: Pipeline::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
            stats: Counters::default(),
        });
        eprintln!(
            "hyperpredd: listening on {addr}, store {} ({} cells, {} conflicts, {} corrupt)",
            inner.store.dir().display(),
            inner.store.len(),
            inner.store.conflicts(),
            inner.store.corrupt(),
        );
        let acc_inner = Arc::clone(&inner);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &acc_inner));
        Ok(Daemon {
            inner,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (matters when the config asked for port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The flag a signal handler flips to stop the daemon.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.shutdown)
    }

    /// Asks the daemon to stop accepting; in-flight work drains.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the acceptor has stopped and every accepted
    /// connection — and every cell inside it — has drained.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let mut conns = self
            .inner
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *conns > 0 {
            conns = self
                .inner
                .conns_cv
                .wait(conns)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(conns);
        // Everything acked is flushed; make it durable before reporting
        // a clean exit.
        if let Err(e) = self.inner.store.sync() {
            eprintln!("hyperpredd: final store fsync failed: {e}");
        }
        eprintln!(
            "hyperpredd: drained; {} hit, {} computed, {} failed, {} rejected, {} conflicted; \
             store holds {} cells",
            self.inner.stats.hits.load(Ordering::Relaxed),
            self.inner.stats.computed.load(Ordering::Relaxed),
            self.inner.stats.failed.load(Ordering::Relaxed),
            self.inner.stats.rejected.load(Ordering::Relaxed),
            self.inner.stats.conflicts.load(Ordering::Relaxed),
            self.inner.store.len(),
        );
    }
}

/// The `503` body served for `/healthz` (and the accept path) while the
/// daemon drains.
const DRAINING_BODY: &str = "{\"status\":\"draining\"}";

/// Accepts until the shutdown flag flips; each connection gets a thread
/// (bounded by `max_connections` — excess answered `503` inline).
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            drain_loop(listener, inner);
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let admitted = {
                    let mut conns = inner.conns.lock().unwrap_or_else(PoisonError::into_inner);
                    if *conns >= inner.cfg.max_connections {
                        false
                    } else {
                        *conns += 1;
                        true
                    }
                };
                if !admitted {
                    inner.stats.busy.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_http_response(
                        &mut stream,
                        503,
                        "{\"error\":\"connection limit reached; retry later\"}",
                    );
                    continue;
                }
                let conn_inner = Arc::clone(inner);
                std::thread::spawn(move || {
                    handle_connection(stream, &conn_inner);
                    let mut conns = conn_inner
                        .conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    *conns -= 1;
                    drop(conns);
                    conn_inner.conns_cv.notify_all();
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("hyperpredd: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// While in-flight connections finish, keep the listener alive and
/// answer every late arrival inline with a typed `503 draining` (a
/// closed listener would surface as connection-refused/reset, which
/// clients cannot distinguish from a crash). Returns once the last
/// accepted connection has drained.
fn drain_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let active = *inner.conns.lock().unwrap_or_else(PoisonError::into_inner);
        if active == 0 {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(Duration::from_millis(500)))
                    .ok();
                let body = match read_http_request(&mut stream) {
                    Ok(Some(req)) if req.path == "/healthz" => DRAINING_BODY,
                    _ => "{\"error\":\"draining; retry later\"}",
                };
                let _ = write_http_response(&mut stream, 503, body);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection: one request, one response, close.
fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let req = match read_http_request(&mut stream) {
        Ok(Some(req)) => req,
        Ok(None) => return,
        Err(e) => {
            let status = if e.to_string().contains("exceeds cap") {
                413
            } else {
                400
            };
            let body = format!("{{\"error\":\"{}\"}}", e.to_string().replace('"', "'"));
            let _ = write_http_response(&mut stream, status, &body);
            return;
        }
    };
    let (status, body) = dispatch(inner, &req.method, &req.path, &req.body);
    let _ = write_http_response(&mut stream, status, &body);
}

/// Routes one parsed request.
fn dispatch(inner: &Inner, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("GET", "/healthz") => {
            if inner.shutdown.load(Ordering::Acquire) {
                (503, DRAINING_BODY.to_string())
            } else {
                (200, "{\"status\":\"ok\"}".to_string())
            }
        }
        ("GET", "/v1/stats") => (200, stats_json(inner)),
        ("POST", "/v1/cell") => match parse_request(body) {
            Ok(req) => (200, response_to_json(&serve_cell(inner, &req))),
            Err(e) => (400, format!("{{\"error\":\"{}\"}}", e.replace('"', "'"))),
        },
        ("POST", "/v1/cells") => match parse_batch(body) {
            Ok(reqs) => {
                let results: Vec<CellResponse> =
                    reqs.iter().map(|r| serve_cell(inner, r)).collect();
                (200, batch_response_to_json(&results))
            }
            Err(e) => (400, format!("{{\"error\":\"{}\"}}", e.replace('"', "'"))),
        },
        _ => (404, "{\"error\":\"no such endpoint\"}".to_string()),
    }
}

/// The experiment slug recorded in the store for service cells; must
/// match the namespace [`request_fingerprint`] folds into the key.
fn service_namespace(degrade: bool) -> &'static str {
    if degrade {
        "service-degrade"
    } else {
        "service-strict"
    }
}

/// Answers one cell: conflicted → refused, stored → hit, else compute
/// under the bounded gate, record, answer.
fn serve_cell(inner: &Inner, req: &CellRequest) -> CellResponse {
    let fp = request_fingerprint(req, &inner.pipe, inner.cfg.request.degrade);
    if inner.store.is_conflicted(&fp) {
        inner.stats.conflicts.fetch_add(1, Ordering::Relaxed);
        return CellResponse::conflict(fp);
    }
    if let Some(stats) = inner.store.get(&fp) {
        inner.stats.hits.fetch_add(1, Ordering::Relaxed);
        return CellResponse::served(CellStatus::Hit, fp, stats, false);
    }
    let _slot = match inner.gate.acquire() {
        Ok(slot) => slot,
        Err(msg) => {
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return CellResponse::rejected(msg);
        }
    };
    // Double-check under the slot: a concurrent identical request may
    // have computed and recorded while this one queued.
    if let Some(stats) = inner.store.get(&fp) {
        inner.stats.hits.fetch_add(1, Ordering::Relaxed);
        return CellResponse::served(CellStatus::Hit, fp, stats, false);
    }
    match run_request(req, &inner.pipe, &inner.cfg.request) {
        Ok((stats, degradation)) => {
            let recorded = inner.store.put(&JournalEntry {
                fingerprint: &fp,
                workload: &req.name,
                experiment: service_namespace(inner.cfg.request.degrade),
                model: Some(req.model),
                stats: &stats,
            });
            match recorded {
                Ok(hyperpred::RecordOutcome::Conflict) => {
                    // Someone recorded *different* stats for this key
                    // while we computed: determinism is broken somewhere;
                    // refuse the key rather than pick a side.
                    inner.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "hyperpredd: fingerprint conflict on {fp} ({}); key quarantined",
                        req.name
                    );
                    CellResponse::conflict(fp)
                }
                Ok(_) => {
                    inner.stats.computed.fetch_add(1, Ordering::Relaxed);
                    CellResponse::served(CellStatus::Computed, fp, stats, degradation.is_degraded())
                }
                Err(e) => {
                    // Durability degraded (e.g. disk full): still answer
                    // the computed stats, but say so in the log.
                    eprintln!("hyperpredd: store append failed: {e}");
                    inner.stats.computed.fetch_add(1, Ordering::Relaxed);
                    CellResponse::served(CellStatus::Computed, fp, stats, degradation.is_degraded())
                }
            }
        }
        Err(failure) => {
            inner.stats.failed.fetch_add(1, Ordering::Relaxed);
            CellResponse::failed(
                fp,
                failure.stage.to_string(),
                triage::signature(&failure.payload),
                failure.to_string(),
            )
        }
    }
}

/// Renders `GET /v1/stats`.
fn stats_json(inner: &Inner) -> String {
    let (active, waiting) = inner.gate.depth();
    format!(
        "{{\"cells\":{},\"store_conflicts\":{},\"corrupt\":{},\"hits\":{},\"computed\":{},\
         \"failed\":{},\"rejected\":{},\"conflicts\":{},\"busy\":{},\"active\":{},\"waiting\":{},\
         \"draining\":{}}}",
        inner.store.len(),
        inner.store.conflicts(),
        inner.store.corrupt(),
        inner.stats.hits.load(Ordering::Relaxed),
        inner.stats.computed.load(Ordering::Relaxed),
        inner.stats.failed.load(Ordering::Relaxed),
        inner.stats.rejected.load(Ordering::Relaxed),
        inner.stats.conflicts.load(Ordering::Relaxed),
        inner.stats.busy.load(Ordering::Relaxed),
        active,
        waiting,
        inner.shutdown.load(Ordering::Acquire),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_active_and_waiting() {
        let gate = Gate::new(1, 1);
        let a = gate.acquire().expect("first slot");
        // Queue position taken by a thread that will hold it.
        let gate2: &'static Gate = Box::leak(Box::new(Gate::new(1, 0)));
        let b = gate2.acquire().expect("slot");
        assert!(
            gate2.acquire().is_err(),
            "zero waiting slots → immediate typed rejection"
        );
        drop(b);
        assert!(gate2.acquire().is_ok(), "released slot is reusable");
        drop(a);
        let (active, waiting) = gate.depth();
        assert_eq!((active, waiting), (0, 0));
    }
}
