//! The paper's Figure 6: the `grep` inner loop — a chain of rarely-taken
//! exit branches — under the three models, plus the OR-tree peephole that
//! makes the conditional-move version competitive.
//!
//! The paper reports the loop dropping from 14 cycles (superblock) to 10
//! (conditional move, after OR-tree height reduction) to 6 (full
//! predication, where OR-type defines issue simultaneously).
//!
//! Run with `cargo run --release --example grep_loop`.

use hyperpred::partial::PartialConfig;
use hyperpred::sched::MachineConfig;
use hyperpred::sim::SimConfig;
use hyperpred::{evaluate, speedup, Model, Pipeline};
use hyperpred_workloads::{by_name, Scale};

fn main() {
    let w = by_name("grep", Scale::Test).expect("grep workload");
    let machine = MachineConfig::new(8, 1);
    let sim = SimConfig::default();
    let pipe = Pipeline::default();

    let base = evaluate(
        &w.source,
        &w.args,
        Model::Superblock,
        MachineConfig::one_issue(),
        sim,
        &pipe,
    )
    .unwrap();
    println!("grep, 8-issue 1-branch (paper Fig. 6: 14 -> 10 -> 6 cycles per loop):\n");
    println!(
        "{:<26}{:>10}{:>10}{:>10}{:>9}",
        "configuration", "cycles", "insts", "branches", "speedup"
    );
    for model in Model::ALL {
        let s = evaluate(&w.source, &w.args, model, machine, sim, &pipe).unwrap();
        println!(
            "{:<26}{:>10}{:>10}{:>10}{:>8.2}x",
            model.to_string(),
            s.cycles,
            s.insts,
            s.branches,
            speedup(&base, &s)
        );
    }

    // The OR-tree ablation (paper §3.2: "the dependence height of the
    // resulting code is log2(n)").
    let no_tree = Pipeline {
        partial: PartialConfig {
            or_tree: false,
            ..PartialConfig::default()
        },
        ..Pipeline::default()
    };
    let s = evaluate(&w.source, &w.args, Model::CondMove, machine, sim, &no_tree).unwrap();
    println!(
        "{:<26}{:>10}{:>10}{:>10}{:>8.2}x",
        "Cond. Move (no OR-tree)",
        s.cycles,
        s.insts,
        s.branches,
        speedup(&base, &s)
    );

    println!();
    println!("(grep is the paper's showcase for OR-type predicates: many");
    println!(" rarely-taken exits merge into predicates that full predication");
    println!(" evaluates in parallel, while conditional-move code needs a");
    println!(" balanced reduction tree to stay competitive)");
}
