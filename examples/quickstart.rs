//! Quickstart: compile one program under the paper's three models and
//! compare them, plus a look at the predicate-define truth table (the
//! paper's Table 1).
//!
//! Run with `cargo run --release --example quickstart`.

use hyperpred::ir::PredType;
use hyperpred::sched::MachineConfig;
use hyperpred::sim::SimConfig;
use hyperpred::{evaluate, speedup, Model, Pipeline};

const SRC: &str = "
// A branchy kernel: per-element classification with unbalanced paths.
int data[256];
int main(int seed) {
    int i; int h; h = seed;
    for (i = 0; i < 256; i += 1) {
        h = h * 1103515245 + 12345;
        data[i] = (h >> 16) & 255;
    }
    int small; int medium; int large; int sum;
    small = 0; medium = 0; large = 0; sum = 0;
    for (i = 0; i < 256; i += 1) {
        int v; v = data[i];
        if (v < 64) { small += 1; sum += v; }
        else if (v < 192) { medium += 1; sum += v / 2; }
        else { large += 1; sum -= 1; }
    }
    return sum + small * 1000 + medium * 1000000 + large * 1000000000;
}";

fn main() {
    // ---- Table 1: the predicate-define truth table -----------------------
    println!("Table 1: predicate define truth table (new value per type)");
    println!("Pin cmp |   U  !U   OR  !OR  AND !AND");
    for pin in [false, true] {
        for cmp in [false, true] {
            print!("  {}   {} |", pin as u8, cmp as u8);
            for ty in PredType::ALL {
                // "-" = leaves the old value in place.
                let w0 = ty.eval(pin, cmp, false);
                let w1 = ty.eval(pin, cmp, true);
                let cell = if w0 == w1 {
                    format!("{}", w0 as u8)
                } else {
                    "-".to_string()
                };
                print!(" {cell:>4}");
            }
            println!();
        }
    }
    println!();

    // ---- The three models on an 8-issue, 1-branch machine ----------------
    let pipe = Pipeline::default();
    let sim = SimConfig::default();
    let args = [7i64];
    let base = evaluate(
        SRC,
        &args,
        Model::Superblock,
        MachineConfig::one_issue(),
        sim,
        &pipe,
    )
    .expect("baseline");
    println!(
        "baseline (1-issue superblock): {} cycles for {} instructions",
        base.cycles, base.insts
    );
    println!();
    println!(
        "{:<22}{:>10}{:>10}{:>10}{:>10}{:>9}",
        "model (8-issue)", "cycles", "insts", "branches", "mispred", "speedup"
    );
    for model in Model::ALL {
        let s =
            evaluate(SRC, &args, model, MachineConfig::new(8, 1), sim, &pipe).expect("model run");
        assert_eq!(s.ret, base.ret, "all models must agree");
        println!(
            "{:<22}{:>10}{:>10}{:>10}{:>10}{:>8.2}x",
            model.to_string(),
            s.cycles,
            s.insts,
            s.branches,
            s.mispredicts,
            speedup(&base, &s)
        );
    }
    println!();
    println!("(predication removes the hard-to-predict classification");
    println!(" branches; full predication does it without the conditional-");
    println!(" move instruction overhead — the paper's central comparison)");
}
