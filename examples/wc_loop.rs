//! The paper's Figure 5: the `wc` inner loop under full and partial
//! predication on a 4-issue, 1-branch machine.
//!
//! The paper reports 18 instructions in 8 cycles with full predicate
//! support versus 31 instructions in 10 cycles with conditional moves for
//! one loop iteration, and full-benchmark speedups of 2.3 (superblock),
//! 2.7 (cmov) and 5.1 (full predication). This example prints our
//! scheduled hyperblock for the same loop shape plus the measured
//! equivalents.
//!
//! Run with `cargo run --release --example wc_loop`.

use hyperpred::sched::MachineConfig;
use hyperpred::sim::SimConfig;
use hyperpred::{evaluate, speedup, Model, Pipeline};
use hyperpred_workloads::{by_name, Scale};

fn main() {
    let w = by_name("wc", Scale::Test).expect("wc workload");
    let pipe = Pipeline::default();
    // Figure 5 uses a 4-issue machine with 1 branch per cycle.
    let machine = MachineConfig::new(4, 1);

    println!("=== wc inner loop, full predication (cf. paper Fig. 5b) ===\n");
    let full = pipe
        .compile(&w.source, &w.args, Model::FullPred, &machine)
        .expect("compile full");
    print_hot_block(&full);

    println!("\n=== wc inner loop, conditional-move code (cf. paper Fig. 5c) ===\n");
    let cmov = pipe
        .compile(&w.source, &w.args, Model::CondMove, &machine)
        .expect("compile cmov");
    print_hot_block(&cmov);

    // ---- whole-benchmark speedups (the Fig. 5 caption numbers) -----------
    let sim = SimConfig::default();
    let base = evaluate(
        &w.source,
        &w.args,
        Model::Superblock,
        MachineConfig::one_issue(),
        sim,
        &pipe,
    )
    .unwrap();
    println!("\nwhole-benchmark speedups vs 1-issue (paper: 2.3 / 2.7 / 5.1 at 8-issue):");
    for (model, issue) in [
        (Model::Superblock, 8),
        (Model::CondMove, 8),
        (Model::FullPred, 8),
    ] {
        let s = evaluate(
            &w.source,
            &w.args,
            model,
            MachineConfig::new(issue, 1),
            sim,
            &pipe,
        )
        .unwrap();
        println!(
            "  {model:<11} {issue}-issue: {:>6} cycles  speedup {:.2}",
            s.cycles,
            speedup(&base, &s)
        );
    }
}

/// Prints the largest block of `main` — the formed (and unrolled) loop
/// hyperblock — with issue cycles from the static schedule.
fn print_hot_block(m: &hyperpred::ir::Module) {
    let f = &m.funcs[m.func_by_name("main").expect("main").index()];
    let hot = f
        .layout
        .iter()
        .copied()
        .max_by_key(|&b| f.block(b).insts.len())
        .expect("nonempty function");
    let insts = &f.block(hot).insts;
    // Show only the first unrolled copy (up to the first back edge).
    let end = insts
        .iter()
        .position(|i| i.target == Some(hot) || i.op.is_branch() && i.target == Some(hot))
        .map(|i| i + 1)
        .unwrap_or(insts.len())
        .min(40);
    println!(
        "{hot}: ({} instructions total; first iteration shown)",
        insts.len()
    );
    let mut last_cycle = u32::MAX;
    for inst in &insts[..end] {
        let marker = if inst.cycle != last_cycle {
            format!("cycle {:>2} |", inst.cycle)
        } else {
            "         |".to_string()
        };
        last_cycle = inst.cycle;
        println!("  {marker} {inst}");
    }
    let iter_len = insts[..end].iter().map(|i| i.cycle).max().unwrap_or(0) + 1;
    println!("  -> one iteration spans {iter_len} statically scheduled cycles");
}
