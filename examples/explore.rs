//! Developer exploration tool: compile a program under all three models and
//! dump schedules + simulation statistics.
//!
//! Usage: `cargo run --example explore [workload-name]`
//! Set `DUMP=1` to also print the scheduled IR of `main`.

use hyperpred::{evaluate, speedup, Model, Pipeline};
use hyperpred_sched::MachineConfig;
use hyperpred_sim::SimConfig;

const DEFAULT_SRC: &str = "int main() {
    int i; int s; s = 0;
    for (i = 0; i < 300; i += 1) {
        if (i % 2 == 0) s += 3;
        else if (i % 3 == 0) s += 7;
        else s -= 1;
    }
    return s;
}";

fn main() {
    let name = std::env::args().nth(1);
    let (src, args) = match &name {
        Some(n) => {
            let w = hyperpred_workloads::by_name(n, hyperpred_workloads::Scale::Test)
                .unwrap_or_else(|| panic!("unknown workload {n}"));
            (w.source, w.args)
        }
        None => (DEFAULT_SRC.to_string(), vec![]),
    };
    let pipe = Pipeline::default();
    let sim = SimConfig::default();
    let base = evaluate(
        &src,
        &args,
        Model::Superblock,
        MachineConfig::one_issue(),
        sim,
        &pipe,
    )
    .expect("baseline");
    println!(
        "baseline 1-issue: {} cycles, {} insts, ipc {:.2}",
        base.cycles,
        base.insts,
        base.ipc()
    );
    for model in Model::ALL {
        let machine = MachineConfig::new(8, 1);
        let stats = evaluate(&src, &args, model, machine, sim, &pipe).expect("model");
        println!(
            "{model:<11} 8-issue: {:>8} cycles {:>8} insts {:>6} br {:>5} mp  ipc {:>5.2}  speedup {:.2}  ret {}",
            stats.cycles,
            stats.insts,
            stats.branches,
            stats.mispredicts,
            stats.ipc(),
            speedup(&base, &stats),
            stats.ret,
        );
    }
    if std::env::var("DUMP").is_ok() {
        for model in Model::ALL {
            let m = pipe
                .compile(&src, &args, model, &MachineConfig::new(8, 1))
                .unwrap();
            println!("==== {model} ====");
            print!("{}", m.funcs[m.func_by_name("main").unwrap().index()]);
        }
    }
}
